"""Crash-safety suite for :mod:`repro.storage.atomic`.

Simulates a crash at the worst moment — after the temp file is written
but before it replaces the destination — by monkeypatching ``os.replace``
inside the module, and asserts the previous artifact survives intact and
no temp files leak.
"""

import json
import os

import numpy as np
import pytest

import repro.storage.atomic as atomic_mod
from repro.data.corpus import Corpus, Document
from repro.data.world import Entity
from repro.retriever.store import TripleStore, build_triple_store
from repro.storage.atomic import (
    _atomic_write,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    atomic_write_text,
)


class _SimulatedCrash(RuntimeError):
    pass


@pytest.fixture
def crash_on_replace(monkeypatch):
    def explode(src, dst):
        raise _SimulatedCrash(f"crash before replacing {dst}")

    monkeypatch.setattr(atomic_mod.os, "replace", explode)


class TestAtomicWriters:
    def test_text_roundtrip(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"

    def test_bytes_roundtrip(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_json_roundtrip_with_kwargs(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"b": 2, "a": 1}, sort_keys=True, indent=2)
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}
        assert target.read_text().startswith("{\n")

    def test_npz_roundtrip(self, tmp_path):
        target = tmp_path / "arrays.npz"
        first = np.arange(6, dtype=np.float64).reshape(2, 3)
        second = np.array([1, 2, 3], dtype=np.int64)
        atomic_write_npz(target, {"first": first, "second": second})
        with np.load(target) as loaded:
            assert np.array_equal(loaded["first"], first)
            assert np.array_equal(loaded["second"], second)

    def test_npz_name_is_exact(self, tmp_path):
        # np.savez appends ".npz" to bare *paths*; writing through the
        # handle must keep the requested name exactly
        target = tmp_path / "weights"
        atomic_write_npz(target, {"w": np.zeros(2)})
        assert target.exists()
        assert not (tmp_path / "weights.npz").exists()


class TestCrashSimulation:
    def test_previous_artifact_survives(self, tmp_path, crash_on_replace):
        target = tmp_path / "artifact.json"
        target.write_text('{"generation": 1}')
        with pytest.raises(_SimulatedCrash):
            atomic_write_text(target, '{"generation": 2}')
        assert json.loads(target.read_text()) == {"generation": 1}

    def test_no_temp_file_leaks(self, tmp_path, crash_on_replace):
        target = tmp_path / "artifact.json"
        with pytest.raises(_SimulatedCrash):
            atomic_write_json(target, {"generation": 2})
        assert list(tmp_path.iterdir()) == []

    def test_npz_crash_leaves_old_file_loadable(
        self, tmp_path, crash_on_replace
    ):
        target = tmp_path / "arrays.npz"
        original = np.arange(4, dtype=np.float64)
        # seed the "previous generation" without going through os.replace
        import io

        buffer = io.BytesIO()
        np.savez(buffer, data=original)
        target.write_bytes(buffer.getvalue())
        with pytest.raises(_SimulatedCrash):
            atomic_write_npz(target, {"data": original * 2})
        with np.load(target) as loaded:
            assert np.array_equal(loaded["data"], original)

    def test_triple_store_save_crash_keeps_old_store(
        self, tmp_path, monkeypatch
    ):
        document = Document(
            doc_id=0,
            title="Alpha Club",
            text="Alpha Club is a club. Alpha Club was founded in 1901.",
            entity=Entity(uid="e0", name="Alpha Club", kind="club"),
        )
        corpus = Corpus([document])
        store = build_triple_store(corpus)
        path = tmp_path / "store.json"
        store.save(path)
        reference = path.read_bytes()

        def explode(src, dst):
            raise _SimulatedCrash("crash")

        monkeypatch.setattr(atomic_mod.os, "replace", explode)
        with pytest.raises(_SimulatedCrash):
            store.save(path)
        assert path.read_bytes() == reference
        reloaded = TripleStore.load(path, corpus)
        assert reloaded.flattened(0) == store.flattened(0)

    def test_write_failure_mid_payload_cleans_temp(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_text("previous")

        def explode(handle):
            handle.write(b"partial")
            raise _SimulatedCrash("payload serialization failed")

        with pytest.raises(_SimulatedCrash):
            _atomic_write(target, explode)
        assert target.read_text() == "previous"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]
