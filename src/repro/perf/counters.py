"""Process-wide retrieval performance counters.

The vectorized retrieval path collapses per-document Python loops into a
handful of matmuls, which makes the speedup easy to claim and hard to
*see*. This module keeps the cheap observables — encoder invocations,
matmul wall-clock, documents/triples scored — in one mutable counter
object that the retrievers increment and the CLI / benchmarks print.

Counting costs a few attribute increments per retrieval call; there is no
locking (CPython increments on the hot path are effectively atomic and the
counters are diagnostics, not accounting).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Cumulative counters for one process (reset explicitly)."""

    encode_calls: int = 0  # encoder forward batches
    texts_encoded: int = 0  # total sentences through the encoder
    matmul_calls: int = 0  # batched scoring products
    matmul_seconds: float = 0.0  # wall-clock inside those products
    queries: int = 0  # query vectors scored
    docs_scored: int = 0  # (query, document) score pairs produced
    triples_scored: int = 0  # (query, triple) score pairs produced

    def record_encode(self, n_texts: int) -> None:
        self.encode_calls += 1
        self.texts_encoded += n_texts

    def record_scoring(
        self, n_queries: int, n_docs: int, n_triples: int, seconds: float
    ) -> None:
        self.matmul_calls += 1
        self.matmul_seconds += seconds
        self.queries += n_queries
        self.docs_scored += n_queries * n_docs
        self.triples_scored += n_queries * n_triples

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))())

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One human-readable block (CLI ``--stats`` output)."""
        per_query = (
            self.matmul_seconds / self.queries * 1e3 if self.queries else 0.0
        )
        return "\n".join(
            [
                "perf counters:",
                f"  encode calls:    {self.encode_calls}"
                f" ({self.texts_encoded} texts)",
                f"  scoring matmuls: {self.matmul_calls}"
                f" ({self.matmul_seconds * 1e3:.1f} ms total,"
                f" {per_query:.3f} ms/query)",
                f"  queries scored:  {self.queries}",
                f"  docs scored:     {self.docs_scored}",
                f"  triples scored:  {self.triples_scored}",
            ]
        )


#: The process-wide counter instance the retrievers increment.
COUNTERS = PerfCounters()


class _Timer:
    """Callable returning the elapsed seconds (frozen at block exit)."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._stop: float = 0.0

    def freeze(self) -> None:
        self._stop = time.perf_counter()

    def __call__(self) -> float:
        return (self._stop or time.perf_counter()) - self._start


@contextmanager
def time_block():
    """``with time_block() as elapsed: ...`` — ``elapsed()`` in seconds."""
    timer = _Timer()
    try:
        yield timer
    finally:
        timer.freeze()
