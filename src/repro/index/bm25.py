"""Okapi BM25 scoring over one index field.

Uses the Lucene variant of the IDF term (non-negative), matching what the
paper's Elasticsearch 7.13 deployment computes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.index.postings import Field


@dataclass(frozen=True)
class BM25Scorer:
    """BM25 with the usual k1/b parametrization (ES defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def idf(self, field: Field, term: str) -> float:
        """Lucene BM25 idf: ln(1 + (N - df + 0.5) / (df + 0.5))."""
        df = field.doc_freq(term)
        if df == 0:
            return 0.0
        n = field.doc_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def scores(self, field: Field, query_terms: Sequence[str]) -> Dict[int, float]:
        """Score every document containing at least one query term."""
        avg_len = field.average_length or 1.0
        accum: Dict[int, float] = {}
        k1, b = self.k1, self.b
        for term in query_terms:
            idf = self.idf(field, term)
            if idf == 0.0:
                continue
            for posting in field.postings(term):
                tf = posting.term_freq
                norm = k1 * (1.0 - b + b * field.doc_length(posting.doc_id) / avg_len)
                gain = idf * tf * (k1 + 1.0) / (tf + norm)
                accum[posting.doc_id] = accum.get(posting.doc_id, 0.0) + gain
        return accum

    def top_k(
        self, field: Field, query_terms: Sequence[str], k: int
    ) -> List[tuple]:
        """Top ``k`` (doc_id, score) pairs, best first; stable by doc id."""
        scored = self.scores(field, query_terms)
        ranked = sorted(scored.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
