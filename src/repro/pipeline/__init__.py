"""The full retriever-updater framework (paper Sec. II and IV-E).

* :mod:`repro.pipeline.multihop` — iterative single-retriever + updater
  document-path retrieval ("Triple-fact Retrieval-base", Eq. 8 path
  scores),
* :mod:`repro.pipeline.path_ranker` — the document-path ranking model that
  rescores complete candidate paths ("Triple-fact Retrieval"),
* :mod:`repro.pipeline.framework` — one-call construction of the whole
  trained system.
"""

from repro.pipeline.multihop import DocumentPath, MultiHopRetriever, MultiHopConfig
from repro.pipeline.path_ranker import PathRanker, PathRankerConfig, PathRankerTrainer
from repro.pipeline.framework import TripleFactRetrieval, FrameworkConfig
from repro.pipeline.joint import JointTrainer, JointConfig, JointExample

__all__ = [
    "DocumentPath",
    "MultiHopRetriever",
    "MultiHopConfig",
    "PathRanker",
    "PathRankerConfig",
    "PathRankerTrainer",
    "TripleFactRetrieval",
    "FrameworkConfig",
    "JointTrainer",
    "JointConfig",
    "JointExample",
]
