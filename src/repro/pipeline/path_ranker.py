"""The document-path ranking model ("Triple-fact Retrieval", Sec. IV-E).

The base pipeline is forward-greedy: hop-1 selection never sees hop-2
evidence, so paths are suboptimal. The ranking model rescores complete
candidate paths against the *original* question — "the ranking model is
same to the single retriever while the only change is to use the document
path as the document input".

A path's representation combines the encoder view (the question with each
hop's best-matching triple) with the statistics that make a reasoning
chain coherent and that bag-like embeddings cannot expose to a linear
head: per-hop relevance, triple-to-triple affinity, and the lexical bridge
evidence (does the hop-1 document's evidence mention the hop-2 document's
title, or does the question itself name it, as in comparison questions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import Corpus
from repro.data.hotpot import HotpotQuestion
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.perf import COUNTERS
from repro.pipeline.multihop import DocumentPath, MultiHopRetriever
from repro.retriever.single import SingleRetriever
from repro.text.tokenize import tokenize


@dataclass
class PathRankerConfig:
    """Path-ranker model/training knobs."""

    epochs: int = 2
    lr: float = 3e-3
    clip_norm: float = 5.0
    seed: int = 29
    blend: float = 0.8  # rerank score = blend*ranker + (1-blend)*base score


class PathRanker:
    """Scores complete (question, path) pairs."""

    N_SCALARS = 7

    def __init__(
        self,
        retriever: SingleRetriever,
        config: Optional[PathRankerConfig] = None,
    ):
        self.retriever = retriever
        self.config = config or PathRankerConfig()
        rng = np.random.RandomState(self.config.seed)
        self.head = Linear(
            retriever.encoder.config.dim + self.N_SCALARS, 1, rng=rng
        )

    # -- features ----------------------------------------------------------
    def _best_triple(self, query_vec: np.ndarray, doc_id: int):
        """(triple, score, embedding) of the doc's best match for the query."""
        triples = self.retriever.store.triples(doc_id)
        scores = self.retriever.triple_scores(query_vec, doc_id)
        if not len(triples) or scores.shape[0] == 0:
            return None, 0.0, None
        index = int(scores.argmax())
        matrix = self.retriever.doc_embeddings(doc_id)
        return triples[index], float(scores[index]), matrix[index]

    @staticmethod
    def _idf_overlap(weights, vocab, source_tokens, target_tokens) -> float:
        target = set(target_tokens)
        total = sum(weights[vocab.id_of(t)] for t in target) or 1.0
        hit = sum(
            weights[vocab.id_of(t)] for t in target if t in source_tokens
        )
        return hit / total

    def path_features(
        self, question: str, path: DocumentPath
    ) -> Tuple[np.ndarray, str]:
        """(feature vector, path text) for one candidate path."""
        scalars, path_text = self._scalar_features(
            question, self.retriever.encode_question(question), path
        )
        COUNTERS.record_encode(1)
        embedding = self.retriever.encoder.encode_numpy([path_text])[0]
        return np.concatenate([embedding, scalars]), path_text

    def _scalar_features(
        self, question: str, query_vec: np.ndarray, path: DocumentPath
    ) -> Tuple[np.ndarray, str]:
        """(scalar features, path text) given a pre-encoded question."""
        encoder = self.retriever.encoder
        vocab, weights = encoder.vocab, encoder._token_weights
        question_tokens = set(tokenize(question))
        doc1, doc2 = path.doc_ids[0], path.doc_ids[1]
        triple1, score1, vec1 = self._best_triple(query_vec, doc1)
        triple2, score2, vec2 = self._best_triple(query_vec, doc2)
        title2 = self.retriever.store.corpus[doc2].title
        title1 = self.retriever.store.corpus[doc1].title
        # triple-to-triple affinity
        if vec1 is not None and vec2 is not None:
            denom = (np.linalg.norm(vec1) * np.linalg.norm(vec2)) or 1.0
            affinity = float(vec1 @ vec2 / denom)
        else:
            affinity = 0.0
        # lexical bridge evidence
        doc1_evidence = set()
        for triple in self.retriever.store.triples(doc1):
            doc1_evidence.update(tokenize(triple.flatten()))
        bridge_lex = self._idf_overlap(
            weights, vocab, doc1_evidence, tokenize(title2)
        )
        title2_in_q = self._idf_overlap(
            weights, vocab, question_tokens, tokenize(title2)
        )
        title1_in_q = self._idf_overlap(
            weights, vocab, question_tokens, tokenize(title1)
        )
        scalars = np.array(
            [
                score1,
                score2,
                affinity,
                bridge_lex,
                max(bridge_lex, title2_in_q),  # some source explains hop 2
                title2_in_q,
                title1_in_q,
            ]
        )
        parts = [question]
        if triple1 is not None:
            parts.append(triple1.flatten())
        if triple2 is not None:
            parts.append(triple2.flatten())
        path_text = " [SEP] ".join(parts)
        return scalars, path_text

    def _feature_matrix(
        self, question: str, paths: Sequence[DocumentPath]
    ) -> np.ndarray:
        """Feature rows for all candidate paths of one question.

        The question is encoded once and all path texts go through the
        encoder as a single batch, instead of one encoder call per path.
        """
        query_vec = self.retriever.encode_question(question)
        scalar_rows: List[np.ndarray] = []
        path_texts: List[str] = []
        for path in paths:
            scalars, path_text = self._scalar_features(
                question, query_vec, path
            )
            scalar_rows.append(scalars)
            path_texts.append(path_text)
        COUNTERS.record_encode(len(path_texts))
        embeddings = self.retriever.encoder.encode_numpy(path_texts)
        return np.concatenate([embeddings, np.stack(scalar_rows)], axis=1)

    # -- scoring ----------------------------------------------------------
    def score_paths(
        self, question: str, paths: Sequence[DocumentPath]
    ) -> np.ndarray:
        """Ranker scores for candidate paths (no gradients)."""
        if not paths:
            return np.zeros(0)
        features = self._feature_matrix(question, paths)
        return (features @ self.head.weight.data).reshape(-1) + float(
            self.head.bias.data[0]
        )

    def rerank(
        self, question: str, paths: Sequence[DocumentPath], k: Optional[int] = None
    ) -> List[DocumentPath]:
        """Blend ranker scores with base scores and re-sort."""
        if not paths:
            return []
        ranker_scores = self.score_paths(question, paths)
        base = np.asarray([p.score for p in paths])

        def _norm(x):
            spread = x.std() or 1.0
            return (x - x.mean()) / spread

        blended = (
            self.config.blend * _norm(ranker_scores)
            + (1 - self.config.blend) * _norm(base)
        )
        # stable sort: tied blended scores keep the (already
        # deterministic) upstream path order, so reranking is a total
        # order like topk_doc_order's (score desc, id asc)
        order = np.argsort(-blended, kind="stable")
        reranked = []
        for index in order:
            path = paths[int(index)]
            reranked.append(
                DocumentPath(
                    doc_ids=path.doc_ids,
                    titles=path.titles,
                    score=float(blended[int(index)]),
                    hop_scores=path.hop_scores,
                    clue=path.clue,
                    matched_triples=path.matched_triples,
                    updated_question=path.updated_question,
                )
            )
        if k is None:
            return reranked
        return reranked[: max(k, 0)]


class PathRankerTrainer:
    """Listwise training of the path ranker head."""

    def __init__(self, ranker: PathRanker, config: Optional[PathRankerConfig] = None):
        self.ranker = ranker
        self.config = config or ranker.config
        self._rng = np.random.RandomState(self.config.seed)

    def build_examples(
        self,
        questions: Sequence[HotpotQuestion],
        corpus: Corpus,
        multihop: MultiHopRetriever,
        max_candidates: int = 8,
    ) -> List[Tuple[str, List[DocumentPath], int]]:
        """(question, candidate paths, gold index) — gold injected if the
        pipeline missed it, so supervision always exists."""
        examples = []
        for question in questions:
            gold_ids = tuple(
                corpus.by_title(t).doc_id
                for t in question.gold_titles
                if corpus.by_title(t) is not None
            )
            if len(gold_ids) < 2:
                continue
            candidates = multihop.retrieve_paths(
                question.text, k_paths=max_candidates
            )
            gold_set = frozenset(question.gold_titles)
            gold_index = None
            for index, path in enumerate(candidates):
                if path.title_set == gold_set:
                    gold_index = index
                    break
            if gold_index is None:
                gold_path = DocumentPath(
                    doc_ids=gold_ids,
                    titles=tuple(question.gold_titles),
                    score=0.0,
                )
                candidates = [gold_path] + candidates[: max_candidates - 1]
                gold_index = 0
            if len(candidates) < 2:
                continue
            examples.append((question.text, candidates, gold_index))
        return examples

    def train(
        self,
        examples: Sequence[Tuple[str, List[DocumentPath], int]],
        verbose: bool = False,
    ) -> List[float]:
        """Train the head listwise; returns per-epoch mean losses."""
        cfg = self.config
        ranker = self.ranker
        optimizer = Adam(ranker.head.parameters(), lr=cfg.lr)
        # feature extraction is the expensive part: cache per example
        cached = [
            (ranker._feature_matrix(question, paths), gold)
            for question, paths, gold in examples
        ]
        losses: List[float] = []
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(cached))
            epoch_losses = []
            for i in order:
                features, gold = cached[i]
                logits = ranker.head(Tensor(features)).reshape(-1)
                loss = -logits.softmax(axis=-1).log()[gold]
                for parameter in ranker.head.parameters():
                    parameter.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover - console output
                print(f"[ranker] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={mean_loss:.4f}")
        return losses
