"""Tests for ``repro.serve``: cache, batching, backpressure, determinism.

The concurrency stress test uses a *dyadic* encoder: embedding entries
are 0/±1 with exactly 16 nonzeros in 32 dims, so every normalized entry
(±1/4) and every cosine (a sum of ±1/16 terms) is an exact dyadic
rational. Float addition over those values is exact, hence associative,
hence the scoring matmul is bitwise identical for *any* batch shape —
which is what lets the test assert byte-identical results under dynamic
micro-batch coalescing instead of hiding behind a tolerance.
"""

import threading
import time
import zlib
from types import SimpleNamespace

import numpy as np
import pytest

from repro.data.corpus import Corpus, Document
from repro.data.world import Entity
from repro.oie.triple import Triple
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore
from repro.serve import (
    MISS,
    DeadlineExceeded,
    Overloaded,
    ResultCache,
    RetrievalService,
    ServiceConfig,
    ServiceStopped,
    query_cache_key,
)

N_DOCS = 60
TRIPLES_PER_DOC = 4
DIM = 32


class DyadicEncoder:
    """Deterministic encoder whose cosines are exact dyadic rationals."""

    def __init__(self, dim: int = DIM, nonzeros: int = 16):
        self.config = SimpleNamespace(dim=dim)
        self.nonzeros = nonzeros

    def encode_numpy(self, texts, batch_size: int = 64) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.config.dim))
        rows = []
        for text in texts:
            rng = np.random.RandomState(
                zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF
            )
            vec = np.zeros(self.config.dim)
            index = rng.choice(
                self.config.dim, size=self.nonzeros, replace=False
            )
            vec[index] = rng.choice([-1.0, 1.0], size=self.nonzeros)
            rows.append(vec)
        return np.stack(rows)


@pytest.fixture(scope="module")
def serve_retriever():
    rng = np.random.RandomState(11)
    documents = []
    rows = {}
    for doc_id in range(N_DOCS):
        title = f"Doc {doc_id}"
        triples = [
            Triple(
                subject=title,
                predicate=f"pred{rng.randint(50)}",
                object=f"obj{rng.randint(50)} tail{rng.randint(50)}",
            )
            for _ in range(TRIPLES_PER_DOC)
        ]
        documents.append(
            Document(
                doc_id=doc_id,
                title=title,
                text=" ".join(t.flatten() for t in triples),
                entity=Entity(uid=doc_id, name=title, kind="synthetic"),
            )
        )
        rows[doc_id] = triples
    store = TripleStore(Corpus(documents))
    for doc_id, triples in rows.items():
        store.put(doc_id, triples)
    retriever = SingleRetriever(DyadicEncoder(), store)
    retriever.refresh_embeddings()
    return retriever


class BlockingStubRetriever:
    """retrieve_many stub that blocks until released (worker-pinning)."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = []

    def retrieve_many(self, questions, k=10, **kwargs):
        self.started.set()
        assert self.release.wait(5.0), "stub never released"
        self.calls.append(list(questions))
        return [[(question, k)] for question in questions]


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestQueryCacheKey:
    def test_normalization_merges_equivalent_spellings(self):
        a = query_cache_key("Who founded  Millwall?", "single", 5)
        b = query_cache_key("who founded millwall?", "single", 5)
        assert a == b

    def test_mode_and_k_separate_entries(self):
        base = query_cache_key("q ?", "single", 5)
        assert query_cache_key("q ?", "paths", 5) != base
        assert query_cache_key("q ?", "single", 6) != base

    def test_nprobe_separates_entries(self):
        """Pruned results must never answer exact requests (or vice versa)."""
        exact = query_cache_key("q ?", "single", 5)
        pruned = query_cache_key("q ?", "single", 5, nprobe=2)
        assert exact != pruned
        assert query_cache_key("q ?", "single", 5, nprobe=3) != pruned
        assert query_cache_key("q ?", "single", 5, nprobe=2) == pruned

    def test_precision_separates_entries(self):
        """A quantized answer must never serve an exact-mode request."""
        exact = query_cache_key("q ?", "single", 5)
        quantized = query_cache_key(
            "q ?", "single", 5, precision="int8-rescore:64"
        )
        assert exact != quantized
        assert (
            query_cache_key("q ?", "single", 5, precision="int8-rescore:128")
            != quantized
        )
        assert (
            query_cache_key("q ?", "single", 5, precision="int8-rescore:64")
            == quantized
        )
        assert (
            query_cache_key("q ?", "single", 5, precision="float32")
            != exact
        )


class TestResultCache:
    def test_hit_miss_and_stats(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is MISS
        cache.put("a", [1, 2])
        assert cache.get("a") == [1, 2]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a's recency
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_existing_refreshes_not_evicts(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite, no eviction
        assert cache.stats.evictions == 0
        cache.put("c", 3)  # now b is LRU
        assert cache.get("b") is MISS
        assert cache.get("a") == 10

    def test_ttl_expiry_with_fake_clock(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1
        clock.advance(1.0)  # age == ttl -> expired
        assert cache.get("a") is MISS
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)  # re-stamped
        clock.advance(8.0)
        assert cache.get("a") == 2

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0

    def test_insert_sweeps_expired_dead_weight(self):
        """Expired entries are reclaimed by inserts, not only by lookups.

        Regression: entries that expired but were never looked up again
        used to squat in the cache until capacity pressure evicted them.
        """
        clock = FakeClock()
        cache = ResultCache(capacity=64, ttl_s=10.0, clock=clock)
        for i in range(6):
            cache.put(f"old{i}", i)
        clock.advance(11.0)  # all six are now dead weight
        cache.put("fresh", 99)  # never looked the old ones up
        assert len(cache) == 1
        assert cache.stats.expirations == 6
        assert cache.stats.evictions == 0
        assert cache.get("fresh") == 99

    def test_sweep_work_per_insert_is_bounded(self):
        from repro.serve.cache import _SWEEP_LIMIT

        clock = FakeClock()
        cache = ResultCache(capacity=128, ttl_s=10.0, clock=clock)
        n_old = _SWEEP_LIMIT * 3
        for i in range(n_old):
            cache.put(f"old{i}", i)
        clock.advance(11.0)
        cache.put("fresh", 99)
        # one insert reclaims at most _SWEEP_LIMIT expired entries
        assert len(cache) == n_old - _SWEEP_LIMIT + 1
        assert cache.stats.expirations == _SWEEP_LIMIT

    def test_expired_entry_leaving_under_pressure_counts_expiration(self):
        """Capacity pops of already-dead entries are not LRU evictions."""
        clock = FakeClock()
        cache = ResultCache(capacity=2, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(11.0)  # "a" is expired but still resident
        cache.put("b", 2)  # sweep reclaims "a" -> expiration
        cache.put("c", 3)
        cache.put("d", 4)  # "b" is live -> genuine eviction
        assert cache.stats.expirations == 1
        assert cache.stats.evictions == 1


# ---------------------------------------------------------------------------
# service basics
# ---------------------------------------------------------------------------


class TestServiceBasics:
    def test_retrieve_matches_direct_bulk_path(self, serve_retriever):
        question = "what links doc 3 and doc 7 ?"
        expected = serve_retriever.retrieve_many([question], k=5)[0]
        with RetrievalService(serve_retriever) as service:
            got = service.retrieve(question, k=5, timeout=10)
        assert [r.doc_id for r in got] == [r.doc_id for r in expected]
        assert [r.score for r in got] == [r.score for r in expected]

    def test_cache_hit_returns_shared_result(self, serve_retriever):
        config = ServiceConfig(cache_size=16)
        with RetrievalService(serve_retriever, config=config) as service:
            first = service.retrieve("warm me up ?", k=5, timeout=10)
            again = service.retrieve("Warm  me UP ?", k=5, timeout=10)
            assert again is first  # normalized-key hit, shared object
            snap = service.stats_snapshot()
        assert snap["cache_hits"] == 1
        assert snap["cache"]["hits"] == 1

    def test_paths_mode_without_multihop_rejected(self, serve_retriever):
        with RetrievalService(serve_retriever) as service:
            with pytest.raises(ValueError, match="paths"):
                service.retrieve_paths("q ?", k=2)

    def test_unknown_mode_rejected(self, serve_retriever):
        with RetrievalService(serve_retriever) as service:
            with pytest.raises(ValueError, match="unknown mode"):
                service.submit("q ?", mode="bogus")

    def test_submit_before_start_and_after_stop_rejected(
        self, serve_retriever
    ):
        service = RetrievalService(serve_retriever)
        with pytest.raises(ServiceStopped):
            service.retrieve("q ?")
        service.start()
        service.stop()
        with pytest.raises(ServiceStopped):
            service.retrieve("q ?")

    def test_start_is_idempotent(self, serve_retriever):
        service = RetrievalService(serve_retriever)
        try:
            assert service.start() is service.start()
            assert service.running
        finally:
            service.stop()

    def test_worker_exception_propagates_to_client(self):
        class ExplodingStub:
            def retrieve_many(self, questions, k=10, **kwargs):
                raise RuntimeError("index corrupted")

        with RetrievalService(ExplodingStub()) as service:
            request = service.submit("q ?", k=3)
            with pytest.raises(RuntimeError, match="index corrupted"):
                request.result(timeout=10)
            assert service.stats_snapshot()["failed"] == 1


class TestServeNprobe:
    class RecordingStub:
        """retrieve_many stub recording the kwargs each batch ran with."""

        def __init__(self):
            self.calls = []

        def retrieve_many(self, questions, k=10, **kwargs):
            self.calls.append((list(questions), k, kwargs))
            return [[(q, k, kwargs.get("nprobe"))] for q in questions]

    def test_nprobe_forwarded_to_retriever(self):
        stub = self.RecordingStub()
        with RetrievalService(stub) as service:
            got = service.retrieve("q ?", k=3, nprobe=2, timeout=10)
        assert got == [("q ?", 3, 2)]
        assert stub.calls[-1][2] == {"nprobe": 2}

    def test_no_nprobe_means_no_kwarg(self):
        """Exact requests pass no nprobe kwarg (pre-sharding stubs work)."""
        stub = self.RecordingStub()
        with RetrievalService(stub) as service:
            service.retrieve("q ?", k=3, timeout=10)
        assert stub.calls[-1][2] == {}

    def test_default_nprobe_from_config(self):
        stub = self.RecordingStub()
        config = ServiceConfig(default_nprobe=3, cache_size=0)
        with RetrievalService(stub, config=config) as service:
            got = service.retrieve("q ?", k=3, timeout=10)
            assert got == [("q ?", 3, 3)]
            overridden = service.retrieve("q ?", k=3, nprobe=1, timeout=10)
            assert overridden == [("q ?", 3, 1)]

    def test_pruned_and_exact_requests_never_share_cache(self):
        stub = self.RecordingStub()
        config = ServiceConfig(cache_size=16)
        with RetrievalService(stub, config=config) as service:
            exact = service.retrieve("q ?", k=3, timeout=10)
            pruned = service.retrieve("q ?", k=3, nprobe=1, timeout=10)
            assert exact != pruned
            assert service.stats_snapshot()["cache_hits"] == 0
            # but an identical pruned request does hit
            again = service.retrieve("q ?", k=3, nprobe=1, timeout=10)
            assert again is pruned
            assert service.stats_snapshot()["cache_hits"] == 1

    def test_differing_nprobe_does_not_coalesce(self):
        """Batches stay homogeneous in (mode, k, nprobe, precision)."""
        from repro.serve.batching import PendingRequest

        a = PendingRequest("q ?", "single", 3, ("key1",), None, nprobe=1)
        b = PendingRequest("q ?", "single", 3, ("key2",), None, nprobe=2)
        c = PendingRequest("q ?", "single", 3, ("key3",), None)
        assert a.batch_key != b.batch_key
        assert a.batch_key != c.batch_key
        assert c.batch_key == ("single", 3, None, None)

    def test_differing_precision_does_not_coalesce(self):
        from repro.serve.batching import PendingRequest

        exact = PendingRequest("q ?", "single", 3, ("k1",), None)
        quant = PendingRequest(
            "q ?", "single", 3, ("k2",), None,
            precision="int8-rescore:64",
        )
        wider = PendingRequest(
            "q ?", "single", 3, ("k3",), None,
            precision="int8-rescore:128",
        )
        assert exact.batch_key != quant.batch_key
        assert quant.batch_key != wider.batch_key
        assert quant.batch_key == (
            "single", 3, None, "int8-rescore:64"
        )


# ---------------------------------------------------------------------------
# admission control + deadlines + shutdown
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_overloaded_when_queue_full(self):
        stub = BlockingStubRetriever()
        config = ServiceConfig(max_pending=2, max_batch_size=1, max_wait_ms=0)
        with RetrievalService(stub, config=config) as service:
            blocked = service.submit("q0 ?")
            assert stub.started.wait(5.0)  # worker now pinned on q0
            queued = [service.submit(f"q{i} ?") for i in (1, 2)]
            with pytest.raises(Overloaded):
                service.submit("q3 ?")
            assert service.stats_snapshot()["rejected_overload"] == 1
            stub.release.set()
            for request in (blocked, *queued):
                assert request.result(timeout=10)
        snap = service.stats_snapshot()
        assert snap["completed"] == 3
        assert snap["submitted"] == 4

    def test_deadline_exceeded_while_queued(self):
        stub = BlockingStubRetriever()
        config = ServiceConfig(max_batch_size=1, max_wait_ms=0)
        with RetrievalService(stub, config=config) as service:
            blocked = service.submit("q0 ?")
            assert stub.started.wait(5.0)
            doomed = service.submit("q1 ?", deadline_s=0.01)
            time.sleep(0.05)  # let the deadline lapse while queued
            stub.release.set()
            assert blocked.result(timeout=10)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10)
            assert service.stats_snapshot()["rejected_deadline"] == 1

    def test_stop_drain_flushes_queued_requests(self, serve_retriever):
        config = ServiceConfig(max_batch_size=4, max_wait_ms=1.0)
        service = RetrievalService(serve_retriever, config=config)
        service.start()
        requests = [
            service.submit(f"drain question {i} ?", k=3) for i in range(12)
        ]
        service.stop(drain=True)
        for request in requests:
            assert request.result(timeout=10), "drained request lost"
        assert service.stats_snapshot()["completed"] == 12

    def test_stop_without_drain_fails_queued(self):
        stub = BlockingStubRetriever()
        config = ServiceConfig(max_batch_size=1, max_wait_ms=0)
        service = RetrievalService(stub, config=config)
        service.start()
        blocked = service.submit("q0 ?")
        assert stub.started.wait(5.0)
        queued = [service.submit(f"q{i} ?") for i in (1, 2)]
        service.stop(drain=False, timeout=0.2)
        for request in queued:
            with pytest.raises(ServiceStopped):
                request.result(timeout=10)
        stub.release.set()  # unpin the worker; in-flight batch completes
        assert blocked.result(timeout=10)


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


class TestServiceStats:
    def test_snapshot_shape_and_consistency(self, serve_retriever):
        with RetrievalService(serve_retriever) as service:
            for i in range(6):
                service.retrieve(f"stats question {i} ?", k=3, timeout=10)
            snap = service.stats_snapshot()
        assert snap["submitted"] == 6
        assert snap["completed"] == 6
        assert snap["failed"] == 0
        histogram = snap["batch_size_histogram"]
        assert sum(size * n for size, n in histogram.items()) == (
            snap["batched_requests"]
        )
        assert snap["qps"] > 0
        for name in ("p50", "p95", "p99", "mean", "max"):
            assert snap["latency_ms"][name] >= 0

    def test_summary_mentions_key_figures(self, serve_retriever):
        with RetrievalService(serve_retriever) as service:
            service.retrieve("summary question ?", k=3, timeout=10)
            text = service.stats_summary()
        assert "qps" in text
        assert "p95" in text
        assert "cache" in text


# ---------------------------------------------------------------------------
# concurrency: determinism under coalescing + caching
# ---------------------------------------------------------------------------


class TestConcurrentDeterminism:
    N_THREADS = 8
    N_QUESTIONS = 40
    K = 5

    def _questions(self):
        return [
            f"which document mentions topic {i} and topic {i + 3} ?"
            for i in range(self.N_QUESTIONS)
        ]

    def _reference(self, retriever, questions):
        """Sequential ground truth: one retrieve_batch call per query."""
        return {
            question: retriever.retrieve_many([question], k=self.K)[0]
            for question in questions
        }

    @pytest.mark.parametrize("cache_size", [0, 512])
    def test_threaded_results_byte_identical(
        self, serve_retriever, cache_size
    ):
        questions = self._questions()
        reference = self._reference(serve_retriever, questions)
        config = ServiceConfig(
            max_batch_size=16,
            max_wait_ms=2.0,
            max_pending=self.N_THREADS * self.N_QUESTIONS,
            cache_size=cache_size,
            workers=2,
        )
        service = RetrievalService(serve_retriever, config=config)
        mismatches = []
        errors = []

        def client(seed):
            order = list(questions)
            np.random.RandomState(seed).shuffle(order)
            for question in order:
                try:
                    got = service.retrieve(question, k=self.K, timeout=30)
                except Exception as error:  # noqa: BLE001 - recorded
                    errors.append(repr(error))
                    continue
                expected = reference[question]
                same = (
                    [r.doc_id for r in got] == [r.doc_id for r in expected]
                    and [r.score for r in got]
                    == [r.score for r in expected]  # bitwise: dyadic floats
                    and [r.matched_triple for r in got]
                    == [r.matched_triple for r in expected]
                )
                if not same:
                    mismatches.append(question)

        with service:
            threads = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snap = service.stats_snapshot()

        assert errors == []
        assert mismatches == []
        total = self.N_THREADS * self.N_QUESTIONS
        # zero dropped below the admission limit
        assert snap["submitted"] == total
        assert snap["completed"] == total
        assert snap["rejected_overload"] == 0
        assert snap["rejected_deadline"] == 0
        assert snap["failed"] == 0
        assert sum(
            size * n for size, n in snap["batch_size_histogram"].items()
        ) + snap["cache_hits"] == total


# ---------------------------------------------------------------------------
# paths mode (service over the multi-hop pipeline)
# ---------------------------------------------------------------------------


class TestPathsMode:
    @pytest.fixture()
    def multihop(self, retriever, encoder):
        from repro.pipeline.multihop import MultiHopConfig, MultiHopRetriever
        from repro.updater.updater import QuestionUpdater

        return MultiHopRetriever(
            retriever,
            QuestionUpdater(encoder),
            MultiHopConfig(k_hop1=4, k_hop2=3, k_paths=6),
        )

    def test_served_paths_match_direct_batch(
        self, retriever, multihop, hotpot
    ):
        questions = [q.text for q in hotpot.test[:3]]
        expected = {
            q: multihop.retrieve_paths_batch([q], k_paths=4)[0]
            for q in questions
        }
        with RetrievalService(retriever, multihop=multihop) as service:
            for question in questions:
                got = service.retrieve_paths(question, k=4, timeout=30)
                want = expected[question]
                assert [p.doc_ids for p in got] == [p.doc_ids for p in want]
                assert [p.score for p in got] == [p.score for p in want]
