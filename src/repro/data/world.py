"""A typed entity/relation knowledge world.

The world is the ground truth everything else is derived from: documents
verbalize its facts, questions query 2-hop chains over it, and gold document
paths come from which documents verbalize which facts.

Entity kinds and relations are modelled on the subject matter HotpotQA
actually draws on (footballers and clubs, bands and members, films and
directors, cities and countries). All randomness flows from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# --------------------------------------------------------------------------
# Schema
# --------------------------------------------------------------------------

#: relation name -> (subject kind, object kind or "literal:<type>")
RELATION_SCHEMA: Dict[str, Tuple[str, str]] = {
    "plays_for": ("person", "club"),
    "member_of": ("person", "band"),
    "born_in": ("person", "city"),
    "educated_at": ("person", "university"),
    "won": ("person", "award"),
    "occupation": ("person", "literal:occupation"),
    "birth_year": ("person", "literal:year"),
    "founded_year": ("club", "literal:year"),
    "based_in": ("club", "city"),
    "league": ("club", "literal:league"),
    "formed_year": ("band", "literal:year"),
    "origin": ("band", "city"),
    "genre": ("band", "literal:genre"),
    "member_count": ("band", "literal:count"),
    "label": ("band", "company"),
    "located_in": ("city", "country"),
    "population": ("city", "literal:population"),
    "city_founded_year": ("city", "literal:year"),
    "headquartered_in": ("company", "city"),
    "industry": ("company", "literal:industry"),
    "company_founded_year": ("company", "literal:year"),
    "directed_by": ("film", "person"),
    "released_year": ("film", "literal:year"),
    "film_genre": ("film", "literal:filmgenre"),
    "univ_located_in": ("university", "city"),
    "established_year": ("university", "literal:year"),
    "award_field": ("award", "literal:field"),
    "capital": ("country", "city"),
}

ENTITY_KINDS = (
    "person",
    "club",
    "band",
    "city",
    "country",
    "company",
    "film",
    "university",
    "award",
)

# Name fragments per kind — combined deterministically by the generator.
_FIRST_NAMES = (
    "Walter Arthur Edgar Harold Clive Gareth Rhys Dylan Marion Edith "
    "Gwen Nora Cecil Stanley Percy Ivor Alun Bryn Carys Megan Idris "
    "Selwyn Trefor Eleri Ffion Aled Rhodri Gwilym Huw Sion Dafydd "
    "Olwen Bronwen Angharad Meredith Talfryn Geraint Emlyn Hywel"
).split()
_SURNAMES = (
    "Davis Morgan Price Hughes Llewellyn Vaughan Griffiths Pritchard "
    "Bowen Jenkins Rees Owain Thomas Powell Meredith Lloyd Beynon "
    "Haverford Kinsey Trevelyan Ashworth Pemberton Winslow Hartley "
    "Colborne Fairfax Stanton Whitmore Aldridge Bancroft Chadwick"
).split()
_PLACE_ROOTS = (
    "Aber Llan Pont Caer Glan Pen Tre Cwm Bryn Nant Dol Maes "
    "Hazel Oak Ash Thorn Mill Stone Fen Marsh Wold Dale"
).split()
_PLACE_SUFFIXES = (
    "ford bridge mouth field stead wick ham ton bury port "
    "dale combe leigh worth minster pool gate"
).split()
_CLUB_SUFFIXES = ("Athletic", "Rovers", "United", "Town", "County", "Wanderers",
                  "Albion", "City", "Rangers", "Corinthians")
_BAND_WORDS = (
    "Velvet Static Crimson Hollow Paper Glass Electric Midnight Neon "
    "Silver Granite Wilder Northern Atomic Lunar Coastal Ember Arcade"
).split()
_BAND_NOUNS = (
    "Foxes Lanterns Harbours Monoliths Sparrows Cascades Orchards "
    "Meridians Pilots Satellites Vespers Corridors Anthems Tides"
).split()
_COMPANY_WORDS = ("Meridian Crestline Harbourview Stonegate Bluepeak Ironwood "
                  "Fairmont Lakeshore Summitline Redgrove Northgate").split()
_COMPANY_SUFFIXES = ("Records", "Holdings", "Industries", "Group", "Media")
_FILM_WORDS = ("The Last The Silent A Distant The Broken The Hidden "
               "Beyond_the After_the The Winter The Glass").split()
_FILM_NOUNS = ("Harvest Lighthouse Orchard Signal Meridian Causeway "
               "Reverie Crossing Archive Furrow Parallel Monsoon").split()
_COUNTRY_NAMES = ("Valdoria Kestrelia Northmark Averland Sundhollow "
                  "Eastvale Morwenna Caldreath Tyrwyn Osmund").split()
_UNI_PATTERN = ("University of {}", "{} Institute of Technology",
                "{} Polytechnic", "{} College")
_AWARD_WORDS = ("Golden Silver Laurel Sterling Meridian National Royal "
                "Continental").split()
_AWARD_NOUNS = ("Boot Quill Baton Lyre Compass Medal Torch Garland").split()
_OCCUPATIONS = ("footballer", "historian", "novelist", "architect",
                "physicist", "journalist", "composer", "sculptor",
                "actor", "engineer")
_LEAGUES = ("Southern League", "Northern Premier League", "Western Combination",
            "Coastal Division", "Midland Alliance")
_GENRES = ("alternative rock", "indie pop", "folk rock", "post punk",
           "electronic", "progressive rock", "jazz fusion")
_FILM_GENRES = ("drama", "thriller", "comedy", "documentary", "western")
_INDUSTRIES = ("music publishing", "shipbuilding", "textiles",
               "telecommunications", "brewing")
_FIELDS = ("literature", "sport", "science", "music", "architecture")


@dataclass(frozen=True)
class Entity:
    """One node in the world: a uniquely named, typed thing."""

    uid: int
    name: str
    kind: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.kind})"


@dataclass(frozen=True)
class Fact:
    """One edge: ``subject --relation--> value``.

    ``value`` is an :class:`Entity` for entity-valued relations and a string
    for literal-valued relations.
    """

    subject: Entity
    relation: str
    value: object  # Entity or str

    @property
    def value_text(self) -> str:
        """The value rendered as surface text."""
        return self.value.name if isinstance(self.value, Entity) else str(self.value)

    @property
    def value_entity(self) -> Optional[Entity]:
        """The value as an entity, or None for literal values."""
        return self.value if isinstance(self.value, Entity) else None


@dataclass
class WorldConfig:
    """Size knobs for world generation. Counts are per entity kind."""

    n_persons: int = 80
    n_clubs: int = 25
    n_bands: int = 25
    n_cities: int = 30
    n_countries: int = 6
    n_companies: int = 12
    n_films: int = 20
    n_universities: int = 10
    n_awards: int = 8
    seed: int = 13


class World:
    """The generated knowledge world.

    Attributes
    ----------
    entities:
        All entities, in creation order.
    facts:
        All facts, in creation order.
    """

    def __init__(self, config: Optional[WorldConfig] = None):
        self.config = config or WorldConfig()
        self.entities: List[Entity] = []
        self.facts: List[Fact] = []
        self._by_kind: Dict[str, List[Entity]] = {k: [] for k in ENTITY_KINDS}
        self._by_name: Dict[str, Entity] = {}
        self._facts_by_subject: Dict[int, List[Fact]] = {}
        self._facts_by_relation: Dict[str, List[Fact]] = {}
        self._rng = np.random.RandomState(self.config.seed)
        self._build()

    # -- public accessors -------------------------------------------------
    def entities_of_kind(self, kind: str) -> List[Entity]:
        """All entities of ``kind``."""
        return list(self._by_kind.get(kind, ()))

    def entity_by_name(self, name: str) -> Optional[Entity]:
        """Exact-name entity lookup."""
        return self._by_name.get(name)

    def facts_of(self, entity: Entity) -> List[Fact]:
        """Facts whose subject is ``entity``."""
        return list(self._facts_by_subject.get(entity.uid, ()))

    def facts_with_relation(self, relation: str) -> List[Fact]:
        """All facts for one relation name."""
        return list(self._facts_by_relation.get(relation, ()))

    def fact_of(self, entity: Entity, relation: str) -> Optional[Fact]:
        """The (first) fact of ``entity`` with ``relation``, if any."""
        for fact in self._facts_by_subject.get(entity.uid, ()):
            if fact.relation == relation:
                return fact
        return None

    # -- generation --------------------------------------------------------
    def _new_entity(self, name: str, kind: str) -> Entity:
        # Disambiguate duplicate names deterministically (Wikipedia-style).
        base = name
        serial = 2
        while name in self._by_name:
            name = f"{base} ({serial})"
            serial += 1
        entity = Entity(uid=len(self.entities), name=name, kind=kind)
        self.entities.append(entity)
        self._by_kind[kind].append(entity)
        self._by_name[name] = entity
        return entity

    def _add_fact(self, subject: Entity, relation: str, value: object) -> Fact:
        fact = Fact(subject=subject, relation=relation, value=value)
        self.facts.append(fact)
        self._facts_by_subject.setdefault(subject.uid, []).append(fact)
        self._facts_by_relation.setdefault(relation, []).append(fact)
        return fact

    def _choice(self, seq: Sequence) -> object:
        return seq[int(self._rng.randint(len(seq)))]

    def _year(self, lo: int = 1850, hi: int = 1990) -> str:
        return str(int(self._rng.randint(lo, hi)))

    def _build(self) -> None:
        cfg = self.config
        countries = [
            self._new_entity(_COUNTRY_NAMES[i % len(_COUNTRY_NAMES)], "country")
            for i in range(cfg.n_countries)
        ]
        cities = [
            self._new_entity(
                f"{self._choice(_PLACE_ROOTS)}{self._choice(_PLACE_SUFFIXES)}".capitalize(),
                "city",
            )
            for _ in range(cfg.n_cities)
        ]
        for city in cities:
            country = self._choice(countries)
            self._add_fact(city, "located_in", country)
            self._add_fact(
                city, "population", str(int(self._rng.randint(4, 900)) * 1000)
            )
            self._add_fact(city, "city_founded_year", self._year(1000, 1900))
        for country in countries:
            self._add_fact(country, "capital", self._choice(cities))

        clubs = [
            self._new_entity(
                f"{self._choice(cities).name} {self._choice(_CLUB_SUFFIXES)}", "club"
            )
            for _ in range(cfg.n_clubs)
        ]
        for club in clubs:
            self._add_fact(club, "founded_year", self._year(1860, 1950))
            self._add_fact(club, "based_in", self._choice(cities))
            self._add_fact(club, "league", self._choice(_LEAGUES))

        companies = [
            self._new_entity(
                f"{self._choice(_COMPANY_WORDS)} {self._choice(_COMPANY_SUFFIXES)}",
                "company",
            )
            for _ in range(cfg.n_companies)
        ]
        for company in companies:
            self._add_fact(company, "headquartered_in", self._choice(cities))
            self._add_fact(company, "industry", self._choice(_INDUSTRIES))
            self._add_fact(company, "company_founded_year", self._year(1880, 1990))

        bands = [
            self._new_entity(
                f"{self._choice(_BAND_WORDS)} {self._choice(_BAND_NOUNS)}", "band"
            )
            for _ in range(cfg.n_bands)
        ]
        for band in bands:
            self._add_fact(band, "formed_year", self._year(1960, 2015))
            self._add_fact(band, "origin", self._choice(cities))
            self._add_fact(band, "genre", self._choice(_GENRES))
            self._add_fact(band, "member_count", str(int(self._rng.randint(2, 7))))
            self._add_fact(band, "label", self._choice(companies))

        universities = [
            self._new_entity(
                self._choice(_UNI_PATTERN).format(self._choice(cities).name),
                "university",
            )
            for _ in range(cfg.n_universities)
        ]
        for univ in universities:
            self._add_fact(univ, "univ_located_in", self._choice(cities))
            self._add_fact(univ, "established_year", self._year(1400, 1970))

        awards = [
            self._new_entity(
                f"{self._choice(_AWARD_WORDS)} {self._choice(_AWARD_NOUNS)}", "award"
            )
            for _ in range(cfg.n_awards)
        ]
        for award in awards:
            self._add_fact(award, "award_field", self._choice(_FIELDS))

        persons = [
            self._new_entity(
                f"{self._choice(_FIRST_NAMES)} {self._choice(_FIRST_NAMES)} "
                f"{self._choice(_SURNAMES)}",
                "person",
            )
            for _ in range(cfg.n_persons)
        ]
        for person in persons:
            self._add_fact(person, "occupation", self._choice(_OCCUPATIONS))
            self._add_fact(person, "birth_year", self._year(1870, 1995))
            self._add_fact(person, "born_in", self._choice(cities))
            # roughly half are footballers-with-clubs, half band members
            if self._rng.rand() < 0.5:
                self._add_fact(person, "plays_for", self._choice(clubs))
            else:
                self._add_fact(person, "member_of", self._choice(bands))
            if self._rng.rand() < 0.35:
                self._add_fact(person, "educated_at", self._choice(universities))
            if self._rng.rand() < 0.3:
                self._add_fact(person, "won", self._choice(awards))

        films = [
            self._new_entity(
                f"{str(self._choice(_FILM_WORDS)).replace('_', ' ')} "
                f"{self._choice(_FILM_NOUNS)}",
                "film",
            )
            for _ in range(cfg.n_films)
        ]
        for film in films:
            self._add_fact(film, "directed_by", self._choice(persons))
            self._add_fact(film, "released_year", self._year(1930, 2020))
            self._add_fact(film, "film_genre", self._choice(_FILM_GENRES))
