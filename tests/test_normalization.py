"""Regressions for the falsy-zero / normalization audit.

The static-analysis PR routed every cosine-score operand through the
shared ``l2_normalize_rows`` / ``l2_normalize_vec`` helpers and fixed the
remaining ``x or default`` falsy-zero defaults. These tests pin the
helper semantics (zero vectors survive) and the behaviours the fixed call
sites rely on.
"""

import numpy as np
import pytest

from repro.baselines.dense_base import DenseRetriever
from repro.nn.transformer import TransformerEncoder
from repro.perf import COUNTERS
from repro.pipeline.multihop import DocumentPath
from repro.pipeline.path_ranker import PathRanker
from repro.retriever.strategies import l2_normalize_rows, l2_normalize_vec
from repro.updater.updater import QuestionUpdater


class TestL2Helpers:
    def test_rows_become_unit_norm(self, rng):
        matrix = rng.normal(size=(5, 7))
        normed = l2_normalize_rows(matrix)
        assert np.allclose(np.linalg.norm(normed, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        matrix = np.array([[3.0, 4.0], [0.0, 0.0]])
        normed = l2_normalize_rows(matrix)
        assert np.allclose(normed[0], [0.6, 0.8])
        assert np.all(normed[1] == 0.0)
        assert np.all(np.isfinite(normed))

    def test_rows_input_not_mutated(self):
        matrix = np.array([[3.0, 4.0]])
        original = matrix.copy()
        l2_normalize_rows(matrix)
        assert np.array_equal(matrix, original)

    def test_vec_unit_norm(self, rng):
        vec = rng.normal(size=9)
        assert np.isclose(np.linalg.norm(l2_normalize_vec(vec)), 1.0)

    def test_zero_vec_stays_zero(self):
        out = l2_normalize_vec(np.zeros(4))
        assert np.all(out == 0.0)
        assert np.all(np.isfinite(out))

    def test_matches_old_or_guard(self, rng):
        # the replaced idiom was `vec / (norm or 1.0)`: bitwise-identical
        # for nonzero vectors, and the zero vector maps to itself
        vec = rng.normal(size=6)
        norm = float(np.linalg.norm(vec))
        assert np.array_equal(l2_normalize_vec(vec), vec / (norm or 1.0))


class TestPerfCounterCoverage:
    """The missing-perf-counter rule's targets really do count."""

    def test_dense_refresh_records_encode(self, encoder, corpus):
        dense = DenseRetriever(encoder, corpus)
        before = COUNTERS.snapshot()
        dense.refresh_embeddings()
        assert COUNTERS.encode_calls == before["encode_calls"] + 1
        assert (
            COUNTERS.texts_encoded == before["texts_encoded"] + len(corpus)
        )
        # and the MIPS matrix rows are unit (or zero) after the refactor
        norms = np.linalg.norm(dense._doc_normed, axis=1)
        assert np.all(
            (np.isclose(norms, 1.0)) | (norms == 0.0)
        )

    def test_path_ranker_features_record_encode(self, retriever, corpus):
        ranker = PathRanker(retriever)
        paths = [
            DocumentPath(
                doc_ids=(0, 1),
                titles=(corpus[0].title, corpus[1].title),
                score=0.0,
            ),
            DocumentPath(
                doc_ids=(1, 2),
                titles=(corpus[1].title, corpus[2].title),
                score=0.0,
            ),
        ]
        before = COUNTERS.texts_encoded
        scores = ranker.score_paths("Who played for the club?", paths)
        assert scores.shape == (2,)
        # one question encode plus one batch over both path texts
        assert COUNTERS.texts_encoded >= before + len(paths) + 1


class TestUpdaterCosineFeature:
    def test_cosine_column_is_bounded(self, encoder, store):
        updater = QuestionUpdater(encoder)
        triples = store.triples(0)
        assert triples, "fixture doc 0 should have triples"
        features = updater._scalar_features("Who founded the club?", triples)
        cosines = features[:, 2]
        assert np.all(cosines <= 1.0 + 1e-9)
        assert np.all(cosines >= -1.0 - 1e-9)


class TestTransformerFfnDefault:
    def test_explicit_zero_is_respected(self):
        # `ffn_dim or dim * 4` used to coerce an explicit 0 to the default
        model = TransformerEncoder(
            vocab_size=11, dim=8, n_layers=1, n_heads=2, max_len=8, ffn_dim=0
        )
        assert model.layers[0].ffn_in.weight.data.shape[1] == 0

    def test_none_still_gets_default(self):
        model = TransformerEncoder(
            vocab_size=11, dim=8, n_layers=1, n_heads=2, max_len=8
        )
        assert model.layers[0].ffn_in.weight.data.shape[1] == 32
