"""Unit tests for optimizers, loss functions and serialization."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cosine_similarity,
    cross_entropy,
)
from repro.nn.optim import SGD, Adam
from repro.nn.serialize import load_weights, save_weights
from repro.nn.tensor import Tensor


def _quadratic_step(optimizer_cls, **kw):
    target = np.array([1.0, -2.0, 3.0])
    parameter = Tensor(np.zeros(3), requires_grad=True)
    optimizer = optimizer_cls([parameter], **kw)
    for _ in range(200):
        optimizer.zero_grad()
        loss = ((parameter - Tensor(target)) * (parameter - Tensor(target))).sum()
        loss.backward()
        optimizer.step()
    return parameter.data, target


class TestOptimizers:
    def test_sgd_converges(self):
        value, target = _quadratic_step(SGD, lr=0.05)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = _quadratic_step(SGD, lr=0.02, momentum=0.9)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adam_converges(self):
        value, target = _quadratic_step(Adam, lr=0.1)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0.0)

    def test_clip_grad_norm(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        parameter.grad = np.full(4, 10.0)
        optimizer = SGD([parameter], lr=0.1)
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_step_skips_missing_grad(self):
        parameter = Tensor(np.ones(2), requires_grad=True)
        Adam([parameter], lr=0.1).step()
        np.testing.assert_array_equal(parameter.data, np.ones(2))

    def test_weight_decay_shrinks(self):
        parameter = Tensor(np.ones(2) * 10.0, requires_grad=True)
        optimizer = Adam([parameter], lr=0.1, weight_decay=1.0)
        parameter.grad = np.zeros(2)
        optimizer.step()
        assert np.all(parameter.data < 10.0)


class TestLosses:
    def test_bce_matches_reference(self):
        logits = Tensor(np.array([0.0, 2.0, -2.0]))
        targets = np.array([1.0, 1.0, 0.0])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        p = 1 / (1 + np.exp(-logits.data))
        reference = -(
            targets * np.log(p) + (1 - targets) * np.log(1 - p)
        ).mean()
        assert loss == pytest.approx(reference, abs=1e-9)

    def test_bce_pos_weight(self):
        logits = Tensor(np.array([-2.0, 1.0]))
        targets = np.array([1.0, 0.0])
        unweighted = binary_cross_entropy_with_logits(logits, targets).item()
        weighted = binary_cross_entropy_with_logits(
            logits, targets, pos_weight=9.0
        ).item()
        assert weighted > unweighted  # positive example dominates

    def test_bce_extreme_logits_stable(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item()) and loss.item() < 1e-6

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.random.RandomState(0).randn(3, 4), requires_grad=True)
        loss = cross_entropy(logits, np.array([1, 0, 0]), ignore_index=0)
        loss.backward()
        np.testing.assert_allclose(logits.grad[1], np.zeros(4), atol=1e-12)
        np.testing.assert_allclose(logits.grad[2], np.zeros(4), atol=1e-12)

    def test_cosine_identical(self):
        a = Tensor(np.array([[1.0, 2.0, 3.0]]))
        assert cosine_similarity(a, a).item() == pytest.approx(1.0, abs=1e-6)

    def test_cosine_orthogonal(self):
        a = Tensor(np.array([1.0, 0.0]))
        b = Tensor(np.array([[0.0, 1.0]]))
        assert cosine_similarity(a, b).numpy()[0] == pytest.approx(0.0, abs=1e-6)

    def test_cosine_vector_matrix_shape(self):
        a = Tensor(np.random.randn(4))
        b = Tensor(np.random.randn(6, 4))
        assert cosine_similarity(a, b).shape == (6,)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = Sequential(Linear(4, 3), Linear(3, 2))
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        other = Sequential(Linear(4, 3), Linear(3, 2))
        load_weights(other, path)
        for (_, a), (_, b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_shape_mismatch_rejected(self, tmp_path):
        model = Sequential(Linear(4, 3))
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        wrong = Sequential(Linear(4, 5))
        with pytest.raises(ValueError):
            load_weights(wrong, path)

    def test_missing_parameter_rejected(self, tmp_path):
        model = Sequential(Linear(4, 3))
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        bigger = Sequential(Linear(4, 3), Linear(3, 2))
        with pytest.raises(KeyError):
            load_weights(bigger, path)
