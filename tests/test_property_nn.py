"""Property-based tests for autograd and index invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index.analyzer import Analyzer
from repro.index.bm25 import BM25Scorer
from repro.index.postings import Field
from repro.nn.tensor import Tensor

small_arrays = arrays(
    np.float64,
    st.tuples(st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestTensorProperties:
    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_sum_to_one(self, data):
        out = Tensor(data).softmax(axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sum_grad_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(data))

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_add_commutative(self, data):
        a = Tensor(data)
        b = Tensor(data * 2)
        np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_max_le_sum_of_abs(self, data):
        x = Tensor(data)
        assert (x.max(axis=-1).numpy() <= np.abs(data).sum(axis=-1) + 1e-12).all()

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_reshape_roundtrip(self, data):
        x = Tensor(data, requires_grad=True)
        out = x.reshape(-1).reshape(data.shape)
        np.testing.assert_array_equal(out.numpy(), data)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(data))


documents = st.lists(
    st.lists(
        st.sampled_from("alpha beta gamma delta club band city".split()),
        min_size=1,
        max_size=10,
    ),
    min_size=1,
    max_size=8,
)


class TestBM25Properties:
    @given(documents, st.sampled_from("alpha beta gamma".split()))
    @settings(max_examples=40, deadline=None)
    def test_scores_nonnegative(self, docs, term):
        field = Field("text")
        for doc_id, tokens in enumerate(docs):
            field.add(doc_id, tokens)
        scores = BM25Scorer().scores(field, [term])
        assert all(score >= 0 for score in scores.values())

    @given(documents)
    @settings(max_examples=40, deadline=None)
    def test_only_matching_docs_scored(self, docs):
        field = Field("text")
        for doc_id, tokens in enumerate(docs):
            field.add(doc_id, tokens)
        scores = BM25Scorer().scores(field, ["alpha"])
        for doc_id in scores:
            assert "alpha" in docs[doc_id]

    @given(documents, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_top_k_sorted_and_bounded(self, docs, k):
        field = Field("text")
        for doc_id, tokens in enumerate(docs):
            field.add(doc_id, tokens)
        ranked = BM25Scorer().top_k(field, ["alpha", "club"], k)
        assert len(ranked) <= k
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestAnalyzerProperties:
    @given(st.text(max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_analyze_never_crashes(self, text):
        terms = Analyzer().analyze(text)
        assert all(isinstance(t, str) and t for t in terms)
