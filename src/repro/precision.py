"""The single source of dtype policy for every embedding matrix.

Every layer that touches the stacked triple matrix — the nn engine, the
encoder, the embedding store, the shard plans, the retriever and the
serving front door — used to spell its own ``np.float64``. At the
ROADMAP's millions-of-docs scale that matrix dominates both RAM and
matmul bandwidth, so the dtype is policy, not an implementation detail,
and this module is the only place it may be spelled (enforced by the
``hardcoded-dtype`` lint rule):

* :class:`Precision` — the end-to-end config threaded through
  ``retrieve/retrieve_many/retrieve_batch/retrieve_paths(_batch)``, the
  serve batch keys and the cache keys. Three modes:

  - ``float64`` — the original exact mode, kept for parity testing;
  - ``float32`` — the default: top-k identical to float64 on the test
    worlds (cosine scores of unit vectors differ by ~1e-7, far below
    any meaningful score gap) at half the memory and bandwidth;
  - ``int8-rescore`` — symmetric per-row int8 quantization (one float32
    scale per row, 8x smaller than float64) scores *coarsely*, prunes
    to the top ``rescore_width`` documents per query, then rescores the
    survivors exactly against the float rows. Recall@k is monotone in
    ``rescore_width`` because survivors form a prefix of the coarse
    total order.

* quantization math — :func:`quantize_rows` / :func:`dequantize_rows` /
  :func:`coarse_scores`. The half-level scheme ``q = clip(round(x *
  127.5 / scale), -127, 127)`` bounds the per-element round-trip error
  by ``scale / 255`` (both interior rounding and the clipped boundary
  land within half a level), the bound the property tests pin.

* named dtype constants — ``TRAINING_DTYPE`` (the autograd engine stays
  float64: finite-difference gradient checks need the headroom),
  ``ACCUM_DTYPE`` (score aggregation accumulates in float64 so segment
  reductions stay bitwise stable across store dtypes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

FLOAT64 = "float64"
FLOAT32 = "float32"
INT8_RESCORE = "int8-rescore"
MODES = (FLOAT64, FLOAT32, INT8_RESCORE)

#: Store/encoder default: float32 halves memory and matmul bandwidth
#: while keeping top-k identical to float64 on the parity worlds.
DEFAULT_MODE = FLOAT32

F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)

#: Float dtypes an embedding store may persist, by canonical name.
STORE_DTYPES = {FLOAT64: F64, FLOAT32: F32}

#: Data-file suffix per store dtype (``embeddings-<digest>.<suffix>``).
FILE_SUFFIXES = {FLOAT64: "f64", FLOAT32: "f32"}

#: The autograd engine's dtype. Training math stays float64: the
#: finite-difference gradient property tests need ~1e-7 agreement that
#: float32 arithmetic cannot deliver. Inference output is cast to the
#: policy dtype at the encoder boundary instead.
TRAINING_DTYPE = F64

#: Accumulator dtype of score aggregation (segment reductions, merges).
#: Aggregating float32 scores in float64 is exact (every float32 is a
#: float64), so sharded and unsharded paths stay bitwise identical
#: regardless of the store dtype.
ACCUM_DTYPE = F64

#: Half-level symmetric quantization: values map to ``[-127.5, 127.5]``
#: before rounding, so both interior rounding error and the clipped
#: boundary (|q| capped at 127) stay within half a level = scale/255.
_Q_LEVELS = 127.5
_Q_MAX = 127

#: Rows per chunk of the int8 coarse matmul: the float32 temporary
#: (chunk x dim) stays cache-resident while DRAM traffic is ~1 byte per
#: matrix element instead of 8 for float64.
COARSE_CHUNK_ROWS = 8192


class PrecisionError(ValueError):
    """An invalid or inconsistent precision configuration."""


def mask_bias_value(dtype) -> float:
    """Additive pre-softmax bias that zeroes padded attention positions.

    Scaled to the compute dtype via ``np.finfo`` (half the largest finite
    magnitude) instead of a hardcoded ``-1e9``: large enough that
    ``exp(bias - row_max)`` underflows to exactly ``0.0`` in the given
    dtype, small enough that adding finite scores never overflows to
    ``-inf``. Because masked weights underflow to exact zeros either
    way, float64 outputs are bitwise independent of which constant is
    used — the graph and fused paths may each take their own dtype.
    """
    return -float(np.finfo(np.dtype(dtype)).max) / 2.0


@dataclass(frozen=True)
class Precision:
    """One end-to-end precision policy.

    ``mode`` selects the scoring path; ``rescore_width`` is the number
    of coarse-ranked documents per query that survive into the exact
    rescore (int8-rescore mode only; ignored by the float modes).
    """

    mode: str = DEFAULT_MODE
    rescore_width: int = 64

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise PrecisionError(
                f"unknown precision mode {self.mode!r} (expected {MODES})"
            )
        if self.rescore_width < 1:
            raise PrecisionError("rescore_width must be >= 1")

    @property
    def dtype(self) -> np.dtype:
        """The float dtype of the stacked matrix under this policy.

        int8-rescore keeps its exact-rescore rows in float32: the coarse
        int8 pass already bounds the error, and the rescore only needs
        to reproduce the float32 ranking.
        """
        return F64 if self.mode == FLOAT64 else F32

    @property
    def quantized(self) -> bool:
        return self.mode == INT8_RESCORE

    def key(self) -> str:
        """Hashable identity for cache/batch keys.

        Two requests may share a cached answer only when they are the
        same pure function of the query — which for int8-rescore
        includes the rescore width (a wider rescore can change top-k).
        """
        if self.quantized:
            return f"{self.mode}:{self.rescore_width}"
        return self.mode


#: Anything callers may pass where a precision is expected.
PrecisionLike = Union[None, str, Precision]


def resolve(precision: PrecisionLike) -> Precision:
    """Coerce ``None`` / a string / a :class:`Precision` to policy.

    Strings may be a bare mode (``"float32"``) or a full cache key
    (``"int8-rescore:64"``) — the round-trip form the serving layer
    stores in ``ServiceConfig.default_precision``.
    """
    if precision is None:
        return Precision()
    if isinstance(precision, Precision):
        return precision
    return parse_key(str(precision))


def parse_key(key: str) -> Precision:
    """Inverse of :meth:`Precision.key` (``mode`` or ``mode:width``)."""
    mode, _, width = key.partition(":")
    if width:
        try:
            rescore_width = int(width)
        except ValueError:
            raise PrecisionError(
                f"malformed precision key {key!r}"
            ) from None
        return Precision(mode=mode, rescore_width=rescore_width)
    return Precision(mode=mode)


def dtype_named(name: str) -> np.dtype:
    """The store dtype for a manifest ``dtype`` field; raises on unknown."""
    try:
        return STORE_DTYPES[name]
    except KeyError:
        raise PrecisionError(
            f"unsupported store dtype {name!r} "
            f"(expected {sorted(STORE_DTYPES)})"
        ) from None


def dtype_name(dtype) -> str:
    """Canonical manifest name of a store dtype; raises on unknown."""
    name = np.dtype(dtype).name
    if name not in STORE_DTYPES:
        raise PrecisionError(
            f"unsupported store dtype {name!r} "
            f"(expected {sorted(STORE_DTYPES)})"
        )
    return name


def file_suffix(dtype) -> str:
    """Data-file suffix (``f32``/``f64``) of a store dtype."""
    return FILE_SUFFIXES[dtype_name(dtype)]


def suffix_dtype(suffix: str) -> np.dtype:
    """The dtype a data-file suffix denotes (default float64 for legacy)."""
    for name, known in FILE_SUFFIXES.items():
        if known == suffix:
            return STORE_DTYPES[name]
    return F64


def cast_matrix(matrix: np.ndarray, dtype) -> np.ndarray:
    """``matrix`` as ``dtype`` (no copy when it already matches)."""
    return np.asarray(matrix, dtype=dtype)


def ensure_float(matrix: np.ndarray) -> np.ndarray:
    """``matrix`` unchanged when already float, else cast to the
    accumulator dtype — dtype-preserving entry for scoring paths."""
    matrix = np.asarray(matrix)
    if not np.issubdtype(matrix.dtype, np.floating):
        matrix = matrix.astype(ACCUM_DTYPE)
    return matrix


# -- int8 symmetric per-row quantization ------------------------------------


def quantize_rows(matrix: np.ndarray):
    """Quantize each row to int8 with one float32 scale per row.

    ``scale[i] = max(|row_i|)`` and ``q = clip(round(x * 127.5 / scale),
    -127, 127)``, so dequantization ``q * scale / 127.5`` reproduces
    every element within ``scale / 255`` (the half-level bound). Zero
    rows get scale 0 and quantize to all-zero. Returns ``(q, scales)``
    with ``q`` int8 of the input shape and ``scales`` float32 ``(rows,)``.
    """
    matrix = np.atleast_2d(np.asarray(matrix))
    rows = matrix.shape[0]
    scales = np.abs(matrix).max(axis=1).astype(F32) if rows else np.zeros(
        0, dtype=F32
    )
    # the factor is formed in float64: a subnormal float32 scale would
    # overflow 127.5/scale in float32
    safe = np.where(scales > 0, scales, 1).astype(F64)
    scaled = matrix * (_Q_LEVELS / safe)[:, None]
    q = np.clip(np.round(scaled), -_Q_MAX, _Q_MAX).astype(np.int8)
    return q, scales


def dequantize_rows(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Float32 reconstruction of :func:`quantize_rows` output."""
    q = np.atleast_2d(np.asarray(q))
    factors = (np.asarray(scales, dtype=F32) / _Q_LEVELS).astype(F32)
    return q.astype(F32) * factors[:, None]


def coarse_scores(
    q_matrix: np.ndarray,
    scales: np.ndarray,
    queries: np.ndarray,
    chunk_rows: int = COARSE_CHUNK_ROWS,
) -> np.ndarray:
    """Dot products of dequantized rows against ``queries`` (float32).

    Equivalent to ``dequantize_rows(q, scales) @ queries.T`` but chunked
    so only ``chunk_rows x dim`` of float32 temporaries exist at a time:
    the int8 matrix is what travels from DRAM. Returns ``(rows,
    n_queries)`` float32 coarse scores.
    """
    queries = np.atleast_2d(cast_matrix(queries, F32))
    rows = q_matrix.shape[0]
    out = np.empty((rows, queries.shape[0]), dtype=F32)
    for start in range(0, rows, chunk_rows):
        stop = min(start + chunk_rows, rows)
        chunk = q_matrix[start:stop].astype(F32)
        out[start:stop] = chunk @ queries.T
    factors = (np.asarray(scales, dtype=F32) / _Q_LEVELS).astype(F32)
    out *= factors[:, None]
    return out
