"""Tests for the command-line interface."""

import json
from types import SimpleNamespace

import pytest

import repro.cli
from repro.cli import build_parser, cmd_demo, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["build", "--out", "x"],
            ["query", "--model", "m", "question?"],
            ["eval", "--model", "m"],
            ["demo", "some text"],
            ["lint", "src"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "--out", "x"])
        assert args.persons == 70 and args.dim == 96


class TestDemo:
    def test_demo_runs(self, capsys):
        exit_code = main(
            ["demo", "Walter Davis was a footballer. He played for Millwall."]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "union extraction" in out
        assert "constructed T_d" in out
        assert "Walter Davis" in out


CLEAN_SOURCE = 'GREETING = "hello"\n'

# one seeded falsy-zero-default violation (the PR-1 bug class)
VIOLATING_SOURCE = "def pick(k=None):\n    k = k or 10\n    return k\n"


class TestLint:
    def _write(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source, encoding="utf-8")
        return path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, CLEAN_SOURCE)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean: 0 findings" in out

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "falsy-zero-default" in out
        assert "1 finding(s)" in out

    def test_json_format_schema(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"falsy-zero-default": 1}
        entry = payload["findings"][0]
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "falsy-zero-default"
        assert entry["line"] == 2

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        assert main(["lint", "--select", "bare-except", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_drops_named_rules(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        exit_code = main(
            ["lint", "--ignore", "falsy-zero-default", str(path)]
        )
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, CLEAN_SOURCE)
        assert main(["lint", "--select", "no-such-rule", str(path)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) >= 8
        assert any(line.startswith("falsy-zero-default:") for line in out)

    def test_lint_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == [] and args.format == "text"


class _FakePath:
    def __init__(self, text):
        self.text = text

    def explain(self):
        return f"path[{self.text}]"


class _StubRetriever:
    def retrieve_many(self, questions, k=10, **kwargs):
        return [[(question, k)] for question in questions]


class _StubMultihop:
    def retrieve_paths_batch(self, questions, k_paths=None):
        return [[_FakePath(question)] for question in questions]


class _StubSystem:
    """Duck-typed TripleFactRetrieval standing in for a trained model."""

    def __init__(self):
        self.batch_calls = []
        self.retriever = _StubRetriever()
        self.multihop = _StubMultihop()

    def retrieve_paths(self, question, k=8, rerank=True):
        return [_FakePath(question)]

    def retrieve_paths_many(self, questions, k=8, rerank=True):
        self.batch_calls.append((list(questions), k))
        return [[_FakePath(question)] for question in questions]


@pytest.fixture()
def stub_system(monkeypatch):
    system = _StubSystem()
    dataset = SimpleNamespace(
        test=[SimpleNamespace(text=f"dataset question {i} ?") for i in range(4)]
    )
    monkeypatch.setattr(
        repro.cli, "_rebuild", lambda model_dir: (system, None, None, dataset)
    )
    return system


class TestQueryBatch:
    def _query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "who founded the club ?\n\n  where was he born ?  \n",
            encoding="utf-8",
        )
        return path

    def test_batch_routes_through_bulk_path(
        self, tmp_path, capsys, stub_system
    ):
        queries = self._query_file(tmp_path)
        exit_code = main(
            ["query", "--model", "m", "--batch", str(queries), "--k", "2"]
        )
        assert exit_code == 0
        # blank/whitespace lines dropped, one bulk call with both questions
        assert stub_system.batch_calls == [
            (["who founded the club ?", "where was he born ?"], 2)
        ]
        out = capsys.readouterr().out
        assert "=== who founded the club ?" in out
        assert "path[where was he born ?]" in out

    def test_single_question_still_works(self, capsys, stub_system):
        assert main(["query", "--model", "m", "why ?"]) == 0
        assert stub_system.batch_calls == []
        assert "path[why ?]" in capsys.readouterr().out

    def test_question_and_batch_together_rejected(
        self, tmp_path, capsys, stub_system
    ):
        queries = self._query_file(tmp_path)
        exit_code = main(
            ["query", "--model", "m", "--batch", str(queries), "also this ?"]
        )
        assert exit_code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_question_nor_batch_rejected(self, capsys, stub_system):
        assert main(["query", "--model", "m"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_empty_batch_file_rejected(self, tmp_path, capsys, stub_system):
        queries = tmp_path / "empty.txt"
        queries.write_text("\n  \n", encoding="utf-8")
        assert main(["query", "--model", "m", "--batch", str(queries)]) == 2
        assert "no queries" in capsys.readouterr().err


class TestServeBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench", "--model", "m"])
        assert args.threads == 8
        assert args.mode == "single"
        assert args.batch_size == 16
        assert args.wait_ms == 2.0
        assert args.format == "text"

    def test_replays_query_file(self, tmp_path, capsys, stub_system):
        queries = tmp_path / "queries.txt"
        queries.write_text("q one ?\nq two ?\nq three ?\n", encoding="utf-8")
        exit_code = main(
            [
                "serve-bench", "--model", "m", "--queries", str(queries),
                "--threads", "3", "--cache-size", "0",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "replayed 3 queries x 3 client thread(s)" in out
        assert "service stats:" in out
        assert "qps" in out

    def test_json_format_reports_full_snapshot(
        self, tmp_path, capsys, stub_system
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("q one ?\nq two ?\n", encoding="utf-8")
        exit_code = main(
            [
                "serve-bench", "--model", "m", "--queries", str(queries),
                "--threads", "2", "--format", "json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == 4
        assert payload["completed"] == 4
        assert payload["failed"] == 0
        assert "latency_ms" in payload and "cache" in payload

    def test_paths_mode_uses_multihop(self, tmp_path, capsys, stub_system):
        queries = tmp_path / "queries.txt"
        queries.write_text("q one ?\n", encoding="utf-8")
        exit_code = main(
            [
                "serve-bench", "--model", "m", "--queries", str(queries),
                "--threads", "1", "--mode", "paths",
            ]
        )
        assert exit_code == 0
        assert "mode=paths" in capsys.readouterr().out

    def test_falls_back_to_dataset_questions(self, capsys, stub_system):
        exit_code = main(
            ["serve-bench", "--model", "m", "--threads", "2", "--n", "3"]
        )
        assert exit_code == 0
        assert "replayed 3 queries" in capsys.readouterr().out

    def test_empty_query_file_rejected(self, tmp_path, capsys, stub_system):
        queries = tmp_path / "empty.txt"
        queries.write_text("", encoding="utf-8")
        exit_code = main(
            ["serve-bench", "--model", "m", "--queries", str(queries)]
        )
        assert exit_code == 2
        assert "no queries" in capsys.readouterr().err

    def test_json_records_run_metadata(self, tmp_path, capsys, stub_system):
        """BENCH artifacts must be reproducible without side context."""
        queries = tmp_path / "queries.txt"
        queries.write_text("q one ?\nq two ?\n", encoding="utf-8")
        exit_code = main(
            [
                "serve-bench", "--model", "m", "--queries", str(queries),
                "--threads", "2", "--format", "json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        run = payload["run"]
        assert run["mode"] == "single"
        assert run["queries"] == 2
        assert run["threads"] == 2
        # defaults are recorded as explicit nulls, not absent keys —
        # consumers can rely on the schema being stable
        assert run["precision"] is None
        assert run["nprobe"] is None
        assert run["shards"] == 0
        assert run["shard_mode"] is None
        assert "store_generation" in run


class TestNetCommands:
    def test_parse_listen(self):
        from repro.cli import _parse_listen

        assert _parse_listen("0.0.0.0:7371") == ("0.0.0.0", 7371)
        with pytest.raises(Exception):
            _parse_listen("no-port")
        with pytest.raises(Exception):
            _parse_listen(":8000")

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--synthetic"])
        assert args.listen == ("127.0.0.1", 7371)
        assert args.workers == 2
        assert args.synthetic

    def test_net_bench_parser_defaults(self):
        args = build_parser().parse_args(["net-bench", "--synthetic"])
        assert args.threads == 8
        assert args.n == 32
        assert args.mode == "mixed"  # paths every 4th query
        assert args.format == "text"

    def test_serve_requires_a_bundle_source(self, capsys):
        assert main(["serve"]) == 2
        assert "--model DIR or --synthetic" in capsys.readouterr().err

    def test_net_bench_requires_a_bundle_source(self, capsys):
        assert main(["net-bench"]) == 2
        assert "--model DIR or --synthetic" in capsys.readouterr().err
