"""Wikihop-style retrieval — cross-document (subject, relation, ?) queries.

The paper's second dataset: answer structured queries by retrieving the
support-document path and reading the answer off the hop-2 document's
triple facts. Demonstrates the retriever-updater framework on a different
query surface form than natural-language questions.

    python examples/wikihop_queries.py
"""

from repro.data import World, WorldConfig, build_corpus, build_wikihop_dataset
from repro.encoder import EncoderConfig, MiniBertEncoder
from repro.retriever import SingleRetriever, build_triple_store
from repro.text import Vocab, tokenize
from repro.updater import compose_updated_question


def main() -> None:
    world = World(
        WorldConfig(
            n_persons=40, n_clubs=12, n_bands=12, n_cities=14,
            n_companies=6, n_films=8, n_universities=5, n_awards=4,
        )
    )
    corpus = build_corpus(world)
    wikihop = build_wikihop_dataset(world, corpus, max_queries=400)
    store = build_triple_store(corpus)
    vocab = Vocab.from_texts(
        [d.text for d in corpus] + [q.text for q in wikihop.train], tokenize
    )
    encoder = MiniBertEncoder(
        vocab, EncoderConfig(dim=64, n_layers=1, n_heads=4, max_len=40,
                             residual_scale=0.05)
    )
    encoder.fit_idf([store.field_text(d.doc_id) for d in corpus])
    retriever = SingleRetriever(encoder, store)
    retriever.refresh_embeddings()

    print(f"{len(wikihop.validation)} validation queries "
          f"over {len(corpus)} documents\n")

    hop1_hits = path_hits = answer_hits = 0
    sample = wikihop.validation[:40]
    for query in sample:
        # hop 1: retrieve the subject's document
        hop1 = retriever.retrieve(query.text, k=4)
        hop1_titles = [r.title for r in hop1]
        hop1_hit = query.gold_titles[0] in hop1_titles
        hop1_hits += hop1_hit
        # updater: pick the clue triple introducing the most novel entity
        # tokens (the untrained stand-in for the learned clue selector)
        top = hop1[0]
        candidates = store.triples(top.doc_id)
        query_tokens = set(query.text.lower().split())

        def novelty(triple):
            return sum(
                1
                for word in triple.flatten().split()
                if word[:1].isupper() and word.lower() not in query_tokens
            )

        import numpy as np

        clues = sorted(candidates, key=novelty, reverse=True)[:3]
        query_vec = retriever.encode_question(query.text)
        pooled = {}
        for clue in clues:
            # the bridge signal is the novel entity itself: keep only the
            # capitalized novel words of the clue
            novel = " ".join(
                w for w in clue.flatten().split()
                if w.lower() not in query_tokens and w[:1].isupper()
            )
            clue_vec = encoder.encode_numpy([novel or clue.flatten()])[0]
            hop2_vec = query_vec / (np.linalg.norm(query_vec) or 1.0) + (
                clue_vec / (np.linalg.norm(clue_vec) or 1.0)
            )
            for result in retriever.retrieve_by_vector(hop2_vec, k=2):
                if result.doc_id != top.doc_id:
                    pooled.setdefault(result.doc_id, result)
        # rank pooled hop-2 candidates by their match to the relation words
        hop2 = sorted(pooled.values(), key=lambda r: -r.score)[:4]
        if not hop2:
            hop2 = retriever.retrieve(query.text, k=4)
        retrieved = set(hop1_titles[:1]) | {r.title for r in hop2}
        path_hit = set(query.gold_titles) <= retrieved
        path_hits += path_hit
        # read the answer from the retrieved triples
        answer = None
        for result in hop2:
            for triple in store.triples(result.doc_id):
                for candidate in query.candidates:
                    if candidate.lower() in triple.flatten().lower():
                        answer = candidate
                        break
        answer_hits += answer == query.answer

    n = len(sample)
    print(f"hop-1 recall@4 : {hop1_hits}/{n}")
    print(f"path coverage  : {path_hits}/{n}")
    print(f"answer accuracy: {answer_hits}/{n} (candidate lookup reader)")

    query = sample[0]
    print(f"\nexample query: ({query.subject}, {query.relation}, ?)")
    print(f"  candidates: {query.candidates}")
    print(f"  gold path: {query.gold_titles} -> answer {query.answer}")


if __name__ == "__main__":
    main()
