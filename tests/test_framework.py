"""Integration test: the one-call TripleFactRetrieval framework."""

import pytest

from repro.encoder.minibert import EncoderConfig
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval
from repro.pipeline.multihop import MultiHopConfig
from repro.pipeline.path_ranker import PathRankerConfig
from repro.retriever.trainer import TrainerConfig
from repro.updater.updater import UpdaterConfig


@pytest.fixture(scope="module")
def system(corpus, hotpot):
    config = FrameworkConfig(
        encoder=EncoderConfig(dim=24, n_layers=1, n_heads=2, max_len=32),
        retriever=TrainerConfig(epochs=1, lr=2e-4),
        updater=UpdaterConfig(epochs=1),
        ranker=PathRankerConfig(epochs=1),
        multihop=MultiHopConfig(k_hop1=4, k_hop2=3, k_paths=6),
        max_train_questions=30,
        max_ranker_questions=10,
    )
    return TripleFactRetrieval(config).fit(corpus, hotpot)


class TestFramework:
    def test_all_stages_built(self, system):
        assert system.store is not None
        assert system.retriever is not None
        assert system.updater is not None
        assert system.multihop is not None
        assert system.ranker is not None

    def test_retrieve_documents(self, system, hotpot):
        results = system.retrieve_documents(hotpot.test[0].text, k=5)
        assert len(results) == 5
        assert results[0].matched_triple is not None

    def test_retrieve_paths_reranked(self, system, hotpot):
        paths = system.retrieve_paths(hotpot.test[0].text, k=4)
        assert 0 < len(paths) <= 4

    def test_retrieve_paths_base(self, system, hotpot):
        paths = system.retrieve_paths(hotpot.test[0].text, k=4, rerank=False)
        scores = [p.score for p in paths]
        assert scores == sorted(scores, reverse=True)

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            TripleFactRetrieval().retrieve_documents("question")

    def test_explanations_available(self, system, hotpot):
        paths = system.retrieve_paths(hotpot.test[0].text, k=2)
        assert "hop 1" in paths[0].explain()
