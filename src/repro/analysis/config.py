"""Analyzer configuration from ``pyproject.toml`` (``[tool.repro.lint]``).

Recognized keys::

    [tool.repro.lint]
    paths = ["src", "tests", "benchmarks"]  # default lint targets
    select = []                             # run only these rule ids
    ignore = []                             # never run these rule ids

    [tool.repro.lint.allow]                 # per-rule path exemptions
    legacy-path-call = ["tests/test_retriever_vectorized.py"]

    [tool.repro.lint.layers]                # import layering DAG
    order = ["foundation", "serving"]       # lowest layer first
    foundation = ["repro.storage", "repro.nn"]
    serving = ["repro.serve", "repro.cli"]

    dead-symbol-allow = ["repro.cli.main"]  # in [tool.repro.lint]

The ``layers`` table declares the architecture: ``order`` lists layer
names from lowest to highest, and each layer name maps to the dotted
module prefixes it contains. A module in a lower layer importing one in
a higher layer is a ``layering-violation``. ``dead-symbol-allow``
exempts symbols (``name`` or ``module.name`` fnmatch patterns) from the
``dead-symbol`` rule — entry points, public API kept for callers, etc.

``tomllib`` ships with Python 3.11+; on older interpreters a minimal
fallback parser handles exactly the shape above (string lists inside the
tables), so the analyzer stays dependency-free everywhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - exercised on 3.11+, fallback below covers 3.9/3.10
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None

DEFAULT_PATHS = ("src", "tests", "benchmarks")


@dataclass
class LintConfig:
    """Resolved analyzer configuration."""

    paths: Tuple[str, ...] = DEFAULT_PATHS
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    root: Optional[Path] = None  # directory the config was loaded from
    #: layer names, lowest first; empty = layering rule disabled
    layers_order: Tuple[str, ...] = ()
    #: layer name -> dotted module prefixes it contains
    layers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: ``name`` / ``module.name`` fnmatch patterns dead-symbol skips
    dead_symbol_allow: Tuple[str, ...] = ()


_SECTION_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_STRING_RE = re.compile(r'"([^"]*)"|\'([^\']*)\'')


def _fallback_parse(text: str) -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """String-list-only parser for the two ``[tool.repro.lint]`` tables."""
    tables: Dict[str, Dict[str, Tuple[str, ...]]] = {}
    current: Optional[Dict[str, Tuple[str, ...]]] = None
    pending_key: Optional[str] = None
    buffer = ""
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].rstrip()
        if not line:
            continue
        section = _SECTION_RE.match(line)
        if section:
            name = section.group("name").strip()
            pending_key = None
            if name == "tool.repro.lint" or name.startswith("tool.repro.lint."):
                current = tables.setdefault(name, {})
            else:
                current = None
            continue
        if current is None:
            continue
        if pending_key is None:
            if "=" not in line:
                continue
            key, value = line.split("=", 1)
            pending_key, buffer = key.strip().strip('"'), value.strip()
        else:
            buffer += " " + line.strip()
        if buffer.startswith("[") and not buffer.endswith("]"):
            continue  # multi-line list still open
        strings = tuple(a or b for a, b in _STRING_RE.findall(buffer))
        current[pending_key] = strings
        pending_key, buffer = None, ""
    return tables


def _string_tuple(value) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(str(item) for item in value or ())


def parse_config(text: str, root: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from pyproject source text."""
    if tomllib is not None:
        data = tomllib.loads(text)
        table = data.get("tool", {}).get("repro", {}).get("lint", {})
        allow_table = table.get("allow", {})
        layers_table = table.get("layers", {})
    else:
        tables = _fallback_parse(text)
        table = dict(tables.get("tool.repro.lint", {}))
        allow_table = tables.get("tool.repro.lint.allow", {})
        layers_table = tables.get("tool.repro.lint.layers", {})
    layers_order = _string_tuple(layers_table.get("order"))
    return LintConfig(
        paths=_string_tuple(table.get("paths")) or DEFAULT_PATHS,
        select=_string_tuple(table.get("select")),
        ignore=_string_tuple(table.get("ignore")),
        allow={
            rule_id: _string_tuple(patterns)
            for rule_id, patterns in allow_table.items()
        },
        root=root,
        layers_order=layers_order,
        layers={
            layer: _string_tuple(prefixes)
            for layer, prefixes in layers_table.items()
            if layer != "order"
        },
        dead_symbol_allow=_string_tuple(table.get("dead-symbol-allow")),
    )


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Find and parse the nearest ``pyproject.toml`` at or above ``start``.

    Returns the defaults (rooted nowhere) when no pyproject exists.
    """
    directory = Path(start) if start is not None else Path.cwd()
    if directory.is_file():
        directory = directory.parent
    for candidate_dir in (directory, *directory.resolve().parents):
        candidate = candidate_dir / "pyproject.toml"
        if candidate.is_file():
            return parse_config(
                candidate.read_text(encoding="utf-8"), root=candidate_dir
            )
    return LintConfig()
