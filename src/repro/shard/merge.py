"""Deterministic top-k selection shared by every retrieval ranking site.

``np.argpartition`` alone returns the top-k *set* with an arbitrary,
layout-dependent order inside score ties — which is exactly what breaks
byte-identical parity between sharded and unsharded retrieval: the same
documents come back in different orders depending on how many shards the
scores travelled through. Every top-k in retrieval code therefore routes
through :func:`topk_doc_order`, which pins the total order to
``(score desc, id asc)`` regardless of input layout. The
``unordered-topk`` lint rule enforces the discipline: a bare
``argpartition`` in retrieval code without a ``lexsort`` tie-break in
the same scope is a finding.
"""

from __future__ import annotations

import numpy as np


def topk_doc_order(
    scores: np.ndarray, ids: np.ndarray, k: int
) -> np.ndarray:
    """Positions of the top-``k`` entries ordered by (score desc, id asc).

    ``scores`` and ``ids`` are parallel arrays; the returned positions
    index into them. The order is a *total* order — ties on score break
    by ascending id — so the result is identical for any permutation of
    the input rows, the property the 1/2/4-shard parity suite pins.

    Selection is O(n) via ``argpartition``; only the candidate set (the
    top-k plus everything tied with the boundary score) pays the final
    ``lexsort``.
    """
    scores = np.asarray(scores)
    ids = np.asarray(ids)
    n = scores.shape[0]
    k = min(int(k), n)
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    if k < n:
        # argpartition finds the top-k set in O(n); every entry tied with
        # the boundary score joins the candidate set so the lexsort below
        # resolves boundary ties exactly like a full (-score, id) sort
        part = np.argpartition(-scores, k - 1)
        boundary = scores[part[k - 1]]
        candidates = np.nonzero(scores >= boundary)[0]
    else:
        candidates = np.arange(n)
    order = candidates[np.lexsort((ids[candidates], -scores[candidates]))]
    return order[:k].astype(np.int64, copy=False)


def recall_at_k(
    approx_ids: np.ndarray, exact_ids: np.ndarray
) -> float:
    """Fraction of the exact top-k ids the approximate top-k recovered."""
    exact = set(int(i) for i in np.asarray(exact_ids).ravel())
    if not exact:
        return 1.0
    approx = set(int(i) for i in np.asarray(approx_ids).ravel())
    return len(exact & approx) / len(exact)
