"""Legacy setup shim (the environment has no `wheel` for PEP 517 editables)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Triple-Fact Retriever: an explainable reasoning retrieval model "
        "for multi-hop QA (ICDE 2022 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
)
