"""Unit tests for the Corpus container."""

import pytest

from repro.data.corpus import Corpus, Document
from repro.data.world import Entity


def _doc(doc_id, title, links=()):
    return Document(
        doc_id=doc_id,
        title=title,
        text=f"{title} is a thing.",
        entity=Entity(uid=doc_id, name=title, kind="city"),
        links=list(links),
    )


class TestCorpus:
    def test_len_iter_getitem(self):
        corpus = Corpus([_doc(0, "A"), _doc(1, "B")])
        assert len(corpus) == 2
        assert [d.title for d in corpus] == ["A", "B"]
        assert corpus[1].title == "B"

    def test_by_title(self):
        corpus = Corpus([_doc(0, "A")])
        assert corpus.by_title("A").doc_id == 0
        assert corpus.by_title("Z") is None

    def test_duplicate_titles_rejected(self):
        with pytest.raises(ValueError):
            Corpus([_doc(0, "A"), _doc(1, "A")])

    def test_neighbours(self):
        corpus = Corpus([_doc(0, "A", links=["B"]), _doc(1, "B")])
        neighbours = corpus.neighbours(corpus[0])
        assert [d.title for d in neighbours] == ["B"]

    def test_neighbours_missing_link_skipped(self):
        corpus = Corpus([_doc(0, "A", links=["Ghost"])])
        assert corpus.neighbours(corpus[0]) == []

    def test_titles_order(self):
        corpus = Corpus([_doc(0, "A"), _doc(1, "B")])
        assert corpus.titles() == ["A", "B"]
