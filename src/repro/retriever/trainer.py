"""Fine-tuning the single retriever (paper Eq. 5).

Binary cross-entropy over the max-matching score: the positive document's
best triple is pushed toward the question, the 9 negatives' best triples
pushed away. Cosine scores are scaled into logits before the sigmoid —
``log F`` with a raw cosine is undefined for negative scores, so, as in
practice, the probability is ``sigmoid(scale * F)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.losses import binary_cross_entropy_with_logits, cosine_similarity
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.retriever.negatives import TrainingExample
from repro.retriever.single import SingleRetriever
from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


@dataclass
class TrainerConfig:
    """Fine-tuning knobs."""

    epochs: int = 2
    lr: float = 3e-4
    logit_scale: float = 4.0
    loss: str = "nce"  # "nce" (listwise softmax) or "bce" (Eq. 5 literal)
    balance_positives: bool = True  # BCE only: pos_weight = #negatives
    max_triples_per_doc: int = 6
    max_negatives: int = 9
    clip_norm: float = 5.0
    seed: int = 17
    refresh_after: bool = True  # re-embed the store when done
    freeze_embeddings: bool = True  # train blocks only, keep the lexical base


def _content_tokens(text: str) -> set:
    return {
        stem(t) for t in tokenize(text) if t[:1].isalnum() and t not in STOPWORDS
    }


class RetrieverTrainer:
    """Trains a :class:`SingleRetriever`'s encoder on mined examples."""

    def __init__(
        self, retriever: SingleRetriever, config: Optional[TrainerConfig] = None
    ):
        self.retriever = retriever
        self.config = config or TrainerConfig()
        self._rng = np.random.RandomState(self.config.seed)

    def _select_triples(self, question: str, doc_id: int) -> List[str]:
        """Cap a document's triples: keep those most lexically entangled
        with the question (a cheap stand-in for in-batch BM25 pruning)."""
        flattened = self.retriever.store.flattened(doc_id)
        cap = self.config.max_triples_per_doc
        if len(flattened) <= cap:
            return flattened
        question_tokens = _content_tokens(question)
        ranked = sorted(
            enumerate(flattened),
            key=lambda item: (-len(_content_tokens(item[1]) & question_tokens), item[0]),
        )
        kept = sorted(index for index, _ in ranked[:cap])
        return [flattened[i] for i in kept]

    def _example_loss(self, example: TrainingExample) -> Optional[Tensor]:
        encoder = self.retriever.encoder
        doc_ids = [example.positive_doc_id] + list(
            example.negative_doc_ids[: self.config.max_negatives]
        )
        texts: List[str] = [example.question]
        spans: List[tuple] = []
        for doc_id in doc_ids:
            flattened = self._select_triples(example.question, doc_id)
            if not flattened:
                spans.append(None)
                continue
            spans.append((len(texts), len(texts) + len(flattened)))
            texts.extend(flattened)
        if spans[0] is None:
            return None  # positive has no triples; nothing to learn from
        embeddings = encoder.encode(texts)
        query_vec = embeddings[0]
        doc_scores: List[Tensor] = []
        targets: List[float] = []
        for position, span in enumerate(spans):
            if span is None:
                continue
            start, stop = span
            scores = cosine_similarity(query_vec, embeddings[start:stop])
            doc_scores.append(scores.max(axis=-1))
            targets.append(1.0 if position == 0 else 0.0)
        if len(doc_scores) < 2:
            return None
        logits = Tensor.stack(doc_scores) * self.config.logit_scale
        if self.config.loss == "nce":
            # Listwise softmax over the same max-matching scores Eq. 5
            # uses. The paper's literal BCE pushes negatives toward an
            # *absolute* score of 0, which at CPU scale collapses the
            # shared embedding space; ranking the ground document above
            # its 9 negatives conveys the identical supervision without
            # constraining absolute score values.
            log_probs = logits.softmax(axis=-1).log()
            return -log_probs[0]
        pos_weight = (
            float(len(targets) - 1) if self.config.balance_positives else 1.0
        )
        return binary_cross_entropy_with_logits(
            logits, np.asarray(targets), pos_weight=max(pos_weight, 1.0)
        )

    def train(
        self, examples: Sequence[TrainingExample], verbose: bool = False
    ) -> List[float]:
        """Run fine-tuning; returns per-epoch mean losses."""
        cfg = self.config
        model = self.retriever.encoder.model
        model.train()
        parameters = model.parameters()
        if cfg.freeze_embeddings:
            # the token/position embeddings carry the lexical matching
            # signal the strong init provides; fine-tuning only the
            # transformer blocks adds contextual corrections on top of it
            # without being able to destroy it (standard L2-SP-style
            # stabilization, taken to its frozen limit).
            frozen = {
                id(model.token_embedding.weight),
                id(model.position_embedding.weight),
            }
            parameters = [p for p in parameters if id(p) not in frozen]
        optimizer = Adam(parameters, lr=cfg.lr)
        losses: List[float] = []
        examples = list(examples)
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(examples))
            epoch_losses: List[float] = []
            for i in order:
                loss = self._example_loss(examples[i])
                if loss is None:
                    continue
                model.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover - console output
                print(f"[retriever] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={mean_loss:.4f}")
        model.eval()
        if cfg.refresh_after:
            self.retriever.refresh_embeddings()
        return losses
