"""Retriever showdown — lexical vs dense vs triple-fact retrieval.

Runs BM25 (text field), BM25 (triple-fact field), a full-text dense
retriever (TPRR-style) and the trained Triple-Fact single retriever over
the same one-hop questions, reporting PR@8 per question type and showing
the matched-triple explanations only the triple retriever can produce.

    python examples/retriever_showdown.py
"""

from repro.baselines import LexicalRetriever, TPRRRetriever
from repro.data import World, WorldConfig, build_corpus, build_hotpot_dataset
from repro.encoder import EncoderConfig, MiniBertEncoder
from repro.eval import RetrievalScorecard, format_table, paragraph_recall
from repro.retriever import (
    RetrieverTrainer,
    SingleRetriever,
    TrainerConfig,
    build_triple_store,
    mine_training_examples,
)
from repro.text import Vocab, tokenize


def main() -> None:
    print("building world + training retrievers (about a minute) ...")
    world = World(
        WorldConfig(
            n_persons=50, n_clubs=14, n_bands=14, n_cities=16,
            n_companies=8, n_films=8, n_universities=5, n_awards=4,
        )
    )
    corpus = build_corpus(world)
    dataset = build_hotpot_dataset(world, corpus, comparison_per_kind=10)
    store = build_triple_store(corpus)
    vocab = Vocab.from_texts(
        [d.text for d in corpus] + [q.text for q in dataset.train], tokenize
    )

    def new_encoder(seed):
        encoder = MiniBertEncoder(
            vocab,
            EncoderConfig(dim=64, n_layers=1, n_heads=4, max_len=40,
                          residual_scale=0.05, seed=seed),
        )
        encoder.fit_idf([store.field_text(d.doc_id) for d in corpus])
        return encoder

    examples = mine_training_examples(dataset.train, corpus, store)

    triple_retriever = SingleRetriever(new_encoder(1), store)
    RetrieverTrainer(
        triple_retriever, TrainerConfig(epochs=2, lr=3e-4)
    ).train(examples)

    tprr = TPRRRetriever(new_encoder(2), corpus)
    tprr.train(examples)

    lexical = LexicalRetriever(corpus, store=store)

    systems = {
        "BM25 text": lambda q: lexical.retrieve_titles(q, k=8, field="text"),
        "BM25 TFS": lambda q: lexical.retrieve_titles(q, k=8, field="triples"),
        "TPRR dense": lambda q: tprr.retrieve_documents(q, k=8),
        "Triple-Retriever": lambda q: [
            r.title for r in triple_retriever.retrieve(q, k=8)
        ],
    }

    rows = []
    for name, fn in systems.items():
        card = RetrievalScorecard()
        for question in dataset.test:
            card.add(
                question.qtype,
                paragraph_recall(fn(question.text), question.gold_titles),
            )
        rows.append([name, card.rate("bridge"), card.rate("comparison"),
                     card.total])
    print()
    print(format_table(["system", "bridge", "comparison", "total"], rows,
                       title="one-hop PR@8"))

    print("\n=== explanations (only the triple retriever locates evidence) ===")
    question = dataset.test[0]
    print(f"Q: {question.text}")
    for result in triple_retriever.retrieve(question.text, k=3):
        print(f"  {result.explain()}")


if __name__ == "__main__":
    main()
