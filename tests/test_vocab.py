"""Unit tests for the vocabulary."""

import pytest

from repro.text.tokenize import tokenize
from repro.text.vocab import SPECIAL_TOKENS, Vocab


class TestVocabConstruction:
    def test_special_tokens_reserved(self):
        vocab = Vocab()
        assert len(vocab) == len(SPECIAL_TOKENS)
        assert vocab.pad_id == 0

    def test_from_tokens_frequency_order(self):
        vocab = Vocab.from_tokens(["b", "a", "b", "b", "a", "c"])
        assert vocab.id_of("b") < vocab.id_of("a") < vocab.id_of("c")

    def test_min_count(self):
        vocab = Vocab.from_tokens(["a", "a", "b"], min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_max_size(self):
        vocab = Vocab.from_tokens("a b c d e".split(), max_size=7)
        assert len(vocab) == 7  # 5 specials + 2 tokens

    def test_from_texts(self):
        vocab = Vocab.from_texts(["the club", "the band"], tokenize)
        assert "club" in vocab and "band" in vocab


class TestVocabLookup:
    def test_unknown_maps_to_unk(self):
        vocab = Vocab(["known"])
        assert vocab.id_of("unknown") == vocab.unk_id

    def test_roundtrip(self):
        vocab = Vocab(["alpha", "beta"])
        ids = vocab.encode(["alpha", "beta", "alpha"])
        assert vocab.decode(ids) == ["alpha", "beta", "alpha"]

    def test_contains(self):
        vocab = Vocab(["x"])
        assert "x" in vocab and "y" not in vocab

    def test_token_of_out_of_range(self):
        vocab = Vocab()
        with pytest.raises(IndexError):
            vocab.token_of(10_000)


class TestVocabPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocab(["alpha", "beta", "gamma"])
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocab.load(path)
        assert len(loaded) == len(vocab)
        assert loaded.id_of("beta") == vocab.id_of("beta")
