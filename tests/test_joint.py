"""Tests for joint end-to-end retriever+updater training."""

import numpy as np
import pytest

from repro.pipeline.joint import JointConfig, JointExample, JointTrainer
from repro.updater.updater import QuestionUpdater, UpdaterConfig


@pytest.fixture(scope="module")
def joint(retriever, encoder):
    updater = QuestionUpdater(encoder, UpdaterConfig(epochs=1))
    return JointTrainer(
        retriever, updater, JointConfig(epochs=1, lr=1e-4)
    )


class TestJointExamples:
    def test_bridge_examples_have_hop2_supervision(self, joint, hotpot, corpus):
        examples = joint.build_examples(hotpot.train[:30], corpus)
        assert examples
        bridge_entries = [e for e in examples if e.hop2_doc_id is not None]
        assert bridge_entries
        for entry in bridge_entries:
            assert entry.clue_text

    def test_clue_text_contains_bridge_tokens(self, joint, hotpot, corpus):
        by_qid = {q.qid: q for q in hotpot.train}
        examples = joint.build_examples(hotpot.train[:30], corpus)
        checked = 0
        for entry in examples:
            if entry.hop2_doc_id is None:
                continue
            question = by_qid[entry.base.qid]
            hop2_tokens = set(question.gold_titles[1].lower().split())
            clue_tokens = set(entry.clue_text.lower().split())
            if hop2_tokens & clue_tokens:
                checked += 1
        assert checked > 0

    def test_comparison_examples_have_no_hop2(self, joint, hotpot, corpus):
        by_qid = {q.qid: q for q in hotpot.train}
        examples = joint.build_examples(hotpot.train, corpus)
        for entry in examples:
            question = by_qid.get(entry.base.qid)
            if question is not None and not question.is_bridge:
                assert entry.hop2_doc_id is None


class TestJointTraining:
    def test_one_epoch_runs(self, joint, hotpot, corpus):
        examples = joint.build_examples(hotpot.train[:10], corpus)
        losses = joint.train(examples)
        assert len(losses) == 1
        assert np.isfinite(losses[0]) and losses[0] > 0

    def test_embeddings_refreshed(self, joint, hotpot, corpus):
        examples = joint.build_examples(hotpot.train[:5], corpus)
        joint.train(examples)
        # retrieval still functional after the joint pass
        results = joint.retriever.retrieve("when was the club founded", k=3)
        assert len(results) == 3

    def test_refresh_updater(self, joint, hotpot, corpus):
        losses = joint.refresh_updater(hotpot.train[:20], corpus)
        assert losses and all(np.isfinite(l) for l in losses)
