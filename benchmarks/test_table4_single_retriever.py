"""Table IV — one-hop PR@8 of learned retrievers.

Paper shape: Triple-Retriever (one-fact) is the best triple strategy —
one-fact > top2 > top5 — and beats the full-text dense baseline (TPR) on
total PR. The Sec. IV-D note (retrieval over raw T_o is worse than over
the constructed T_d) is asserted here too.
"""

import pytest

from repro.eval.experiments import run_table4, run_table4_union_ablation
from repro.eval.tables import format_table, row_from_scorecard


@pytest.fixture(scope="module")
def table4(ctx, trained_system):
    return run_table4(ctx)


def test_table4_one_hop_retrieval(ctx, table4, benchmark):
    question = ctx.eval_questions[0].text
    retriever = ctx.system.retriever
    benchmark(lambda: retriever.retrieve(question, k=8))
    rows = [row_from_scorecard(name, card) for name, card in table4.items()]
    print()
    print(
        format_table(
            ["model", "bridge", "comparison", "total"],
            rows,
            title="Table IV — one-hop PR@8",
        )
    )
    one_fact = table4["Triple-Retriever"]
    top2 = table4["Triple-Retriever-top2"]
    top5 = table4["Triple-Retriever-top5"]
    tpr = table4["TPR"]
    # strategy ordering: one-fact >= top2 >= top5 (with noise tolerance)
    assert one_fact.total >= top2.total - 0.02
    assert top2.total >= top5.total - 0.05
    # the triple-level retriever beats the full-text dense encoder
    assert one_fact.total >= tpr.total - 0.02


def test_table4_union_set_ablation(ctx, trained_system, table4):
    """Sec. IV-D: one-fact over raw T_o loses to the constructed T_d."""
    union_card = run_table4_union_ablation(ctx)
    constructed = table4["Triple-Retriever"]
    print(
        f"\nT_o (raw union) PR@8 total: {union_card.total:.3f} vs "
        f"T_d (constructed): {constructed.total:.3f}"
    )
    assert constructed.total >= union_card.total - 0.05
