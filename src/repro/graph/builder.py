"""Build a knowledge graph from a corpus's constructed triple facts.

Nodes are entities (documents' title entities and every linked mention);
each triple whose subject and object both link to entities contributes an
edge labelled with the predicate and the source document. The graph is the
structured counterpart of the hyperlink graph PathRetriever uses — but
derived from extracted facts, so two documents can be connected even when
no hyperlink exists (the failure mode the paper calls out for [3]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.data.corpus import Corpus
from repro.index.entity_index import EntityIndex
from repro.oie.triple import Triple
from repro.retriever.store import TripleStore


@dataclass(frozen=True)
class GraphEdge:
    """One triple-derived edge."""

    subject: str
    object: str
    predicate: str
    doc_id: int
    triple: Triple


class TripleGraph:
    """A networkx MultiDiGraph over entities with triple-fact edges."""

    def __init__(self, corpus: Corpus):
        self.corpus = corpus
        self.graph = nx.MultiDiGraph()
        self._doc_entities: Dict[int, Set[str]] = {}

    # -- construction -----------------------------------------------------
    def add_edge(self, edge: GraphEdge) -> None:
        self.graph.add_node(edge.subject)
        self.graph.add_node(edge.object)
        self.graph.add_edge(
            edge.subject,
            edge.object,
            predicate=edge.predicate,
            doc_id=edge.doc_id,
            triple=edge.triple,
        )
        self._doc_entities.setdefault(edge.doc_id, set()).update(
            (edge.subject, edge.object)
        )

    # -- queries -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    def neighbours(self, entity: str) -> List[str]:
        """Entities one triple-edge away (either direction)."""
        if entity not in self.graph:
            return []
        out = set(self.graph.successors(entity))
        out.update(self.graph.predecessors(entity))
        out.discard(entity)
        return sorted(out)

    def edges_between(self, a: str, b: str) -> List[GraphEdge]:
        """All triple edges connecting ``a`` and ``b`` (either direction)."""
        found: List[GraphEdge] = []
        for u, v in ((a, b), (b, a)):
            if self.graph.has_edge(u, v):
                for _, data in self.graph[u][v].items():
                    found.append(
                        GraphEdge(
                            subject=u,
                            object=v,
                            predicate=data["predicate"],
                            doc_id=data["doc_id"],
                            triple=data["triple"],
                        )
                    )
        return found

    def documents_of(self, entity: str) -> Set[int]:
        """Documents whose triples mention ``entity``."""
        return {
            doc_id
            for doc_id, entities in self._doc_entities.items()
            if entity in entities
        }

    def doc_entities(self, doc_id: int) -> Set[str]:
        """Entities contributed to the graph by one document."""
        return set(self._doc_entities.get(doc_id, set()))

    def docs_connected(self, doc_a: int, doc_b: int) -> bool:
        """True when the two documents share an entity or a triple edge
        connects their entity sets — the graph-level evidence that a
        (doc_a, doc_b) reasoning path is coherent."""
        entities_a = self.doc_entities(doc_a)
        entities_b = self.doc_entities(doc_b)
        if entities_a & entities_b:
            return True
        return any(
            self.graph.has_edge(a, b) or self.graph.has_edge(b, a)
            for a in entities_a
            for b in entities_b
        )

    def entity_paths(
        self, source: str, target: str, cutoff: int = 3
    ) -> List[List[str]]:
        """Simple entity paths between two nodes (reasoning chains)."""
        if source not in self.graph or target not in self.graph:
            return []
        undirected = self.graph.to_undirected(as_view=True)
        return [
            list(path)
            for path in nx.all_simple_paths(
                undirected, source, target, cutoff=cutoff
            )
        ]


def build_triple_graph(
    corpus: Corpus,
    store: TripleStore,
    linker: Optional[EntityIndex] = None,
) -> TripleGraph:
    """Construct the triple graph for a corpus.

    Edges require both endpoints to link to known entities; literal-valued
    triples (years, counts) contribute no edge but their subjects still
    become nodes via other triples.
    """
    if linker is None:
        linker = EntityIndex(corpus.titles())
    graph = TripleGraph(corpus)
    for document in corpus:
        for triple in store.triples(document.doc_id):
            subjects = linker.link(triple.subject)
            objects = []
            for obj in (triple.object,) + triple.extra_objects:
                objects.extend(linker.link(obj))
            if not subjects or not objects:
                continue
            subject = subjects[0]
            for obj in objects:
                if obj == subject:
                    continue
                graph.add_edge(
                    GraphEdge(
                        subject=subject,
                        object=obj,
                        predicate=triple.predicate,
                        doc_id=document.doc_id,
                        triple=triple,
                    )
                )
    return graph
