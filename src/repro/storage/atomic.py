"""Atomic artifact writes: write to a sibling temp file, then rename.

Every on-disk artifact this repo produces (triple stores, embedding
manifests, model heads, benchmark reports) is either fully the old
version or fully the new one — never a truncated hybrid. The recipe is
the standard one: write the payload to a uniquely named temp file *in
the same directory* (same filesystem, so the rename cannot degrade to a
copy), flush + fsync, then ``os.replace`` over the destination, which
POSIX guarantees is atomic. A crash at any point leaves the previous
artifact untouched; the orphaned ``*.tmp`` file is removed on the next
successful write or by the caller.

The ``nonatomic-artifact-write`` lint rule (``repro.analysis.rules``)
enforces that artifact paths are only written through these helpers.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Union

import numpy as np

PathLike = Union[str, Path]


def _atomic_write(path: PathLike, write: Callable[[Any], None]) -> None:
    """Write via ``write(handle)`` to a temp file, fsync, rename over ``path``."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # crash-simulation tests monkeypatch os.replace to fail here; the
        # destination must stay intact and the temp file must not leak
        tmp_path.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    _atomic_write(path, lambda handle: handle.write(data))


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, payload: Any, **dumps_kwargs: Any) -> None:
    """Atomically replace ``path`` with ``json.dumps(payload)``."""
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


def atomic_write_npz(
    path: PathLike, arrays: Dict[str, np.ndarray], compressed: bool = True
) -> None:
    """Atomically replace ``path`` with an ``.npz`` archive of ``arrays``.

    ``np.savez*`` appends ``.npz`` to bare file names but writes file
    *handles* verbatim, so the archive goes through the temp-file handle.
    """
    saver = np.savez_compressed if compressed else np.savez

    def write(handle: Any) -> None:
        saver(handle, **arrays)

    _atomic_write(path, write)
