"""Content fingerprints driving incremental ingestion.

Three things can invalidate an offline artifact, and each gets its own
hash so only the affected stage re-runs:

* **document content** — title + body text + entity kind; a doc edit
  dirties that document's extraction *and* its embedding rows.
* **construction inputs** — the :class:`~repro.triples.construct.
  ConstructionConfig` knobs plus the entity universe (Algorithm 1's
  Eq. 1 relatedness depends on which titles exist); a change dirties
  every document's extraction.
* **encoder parameters** — config, vocabulary, weights and pooling
  weights; a change dirties every embedding row but *not* the extracted
  triples.

All fingerprints are hex SHA-256 digests of canonical byte encodings, so
they are stable across processes and platforms and safe to persist in
JSON manifests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Iterable, Optional, Sequence

#: Separator that cannot appear inside tokens/texts being joined.
_SEP = b"\x1f"


def _digest(*parts: bytes) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part)
        hasher.update(_SEP)
    return hasher.hexdigest()


def _encode(value: object) -> bytes:
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")


def hash_texts(texts: Iterable[str]) -> str:
    """Order-sensitive digest of a sequence of strings."""
    return _digest(*(_encode(t) for t in texts))


def document_fingerprint(
    title: str, text: str, entity_kind: Optional[str] = None
) -> str:
    """Digest of one document's extraction-relevant content."""
    return _digest(b"doc:v1", _encode(title), _encode(text), _encode(entity_kind))


def config_fingerprint(config: object) -> str:
    """Digest of a (dataclass) config's field values."""
    payload = asdict(config) if is_dataclass(config) else vars(config)
    return _digest(b"cfg:v1", json.dumps(payload, sort_keys=True).encode("utf-8"))


def construction_fingerprint(config: object, entity_universe: Sequence[str]) -> str:
    """Digest of everything that parameterizes Algorithm 1 corpus-wide.

    The entity universe enters because relatedness pruning (Eq. 1) links
    against the title dictionary: adding or renaming a document can
    change another document's construction even if its text is unchanged.
    """
    return _digest(
        b"construct:v1",
        _encode(config_fingerprint(config)),
        _encode(hash_texts(sorted(entity_universe))),
    )


def triples_fingerprint(flattened: Sequence[str]) -> str:
    """Digest of one document's flattened triple texts (embedding rows)."""
    return _digest(b"rows:v1", _encode(hash_texts(flattened)))


def encoder_fingerprint(encoder) -> str:
    """Digest of everything that determines an encoder's outputs.

    Covers the architecture config, the vocabulary (token order matters —
    ids feed the embedding table), every named parameter array and the
    IDF pooling weights. Hashing is a few MB/s-scale passes over small
    arrays — orders of magnitude cheaper than one corpus encode.

    Duck-typed: components an encoder-like object lacks (test doubles,
    baselines) are simply skipped. An under-informed fingerprint can only
    cause extra re-encoding, never a wrong reuse of stale rows, because
    reuse additionally requires matching per-document row hashes.
    """
    hasher = hashlib.sha256()
    hasher.update(b"enc:v1")
    hasher.update(_encode(type(encoder).__qualname__))
    config = getattr(encoder, "config", None)
    if config is not None:
        try:
            hasher.update(_encode(config_fingerprint(config)))
        except TypeError:
            hasher.update(_encode(repr(config)))
    vocab = getattr(encoder, "vocab", None)
    if vocab is not None:
        hasher.update(
            _encode(hash_texts(vocab.token_of(i) for i in range(len(vocab))))
        )
    model = getattr(encoder, "model", None)
    if model is not None and hasattr(model, "named_parameters"):
        for name, tensor in model.named_parameters():
            data = tensor.data
            hasher.update(_encode(name))
            hasher.update(_encode(str(data.dtype)))
            hasher.update(_encode(str(data.shape)))
            hasher.update(data.tobytes())
    weights = getattr(encoder, "_token_weights", None)
    if weights is not None:
        hasher.update(_encode(str(weights.dtype)))
        hasher.update(weights.tobytes())
    return hasher.hexdigest()
