"""HopRetriever baseline (Li et al. 2020): entity-enriched dense retrieval.

HopRetriever "leverages structured entity relation and unstructured
introductory facts": each document's representation fuses its text
encoding with embeddings of the entities mentioned in it, raising the
weight of entity information in the matching space. The paper's critique
(Sec. IV-E): entity overlap is only part of the needed semantics — which
is exactly how this baseline behaves when the matching evidence is a
non-entity token span.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.dense_base import DenseConfig, DenseRetriever
from repro.data.corpus import Corpus
from repro.encoder.minibert import MiniBertEncoder
from repro.index.entity_index import EntityIndex


class HopRetrieverBaseline(DenseRetriever):
    """Dense retrieval whose document text is enriched with entity mentions."""

    def __init__(
        self,
        encoder: MiniBertEncoder,
        corpus: Corpus,
        linker: Optional[EntityIndex] = None,
        config: Optional[DenseConfig] = None,
        entity_repeat: int = 2,
        k_hop1: int = 8,
        k_hop2: int = 4,
    ):
        super().__init__(encoder, corpus, config)
        if linker is None:
            linker = EntityIndex(corpus.titles())
            for document in corpus:
                linker.add_document(document.doc_id, document.text)
        self.linker = linker
        self.entity_repeat = entity_repeat
        self.k_hop1 = k_hop1
        self.k_hop2 = k_hop2

    def document_text(self, doc_id: int) -> str:
        """Text truncated as usual, then entity mentions appended
        ``entity_repeat`` times — the lexical analogue of up-weighting
        mention embeddings in the fused representation."""
        base = super().document_text(doc_id)
        entities = self.linker.entities_of(doc_id)
        if not entities or self.entity_repeat <= 0:
            return base
        mention_block = " ".join(entities) * 1
        return base + (" " + mention_block) * self.entity_repeat

    def retrieve_documents(self, question: str, k: int = 8) -> List[str]:
        return self.retrieve_titles(question, k=k)

    def hop2_query(self, question: str, doc_id: int) -> str:
        """Hop-2 query: question plus the hop-1 document's entity mentions
        (its structured knowledge), not its full text."""
        entities = self.linker.entities_of(doc_id)
        return f"{question} {' '.join(entities)}" if entities else question

    def retrieve_paths(
        self, question: str, k_paths: int = 8
    ) -> List[Tuple[str, ...]]:
        return self.two_hop_paths(
            question, self.k_hop1, self.k_hop2, k_paths=k_paths
        )
