"""One-call construction of the full trained Triple-Fact Retrieval system.

``TripleFactRetrieval.fit(corpus, dataset)`` runs the complete paper
pipeline: triple extraction + Algorithm 1 over the corpus, vocabulary and
IDF fitting, MLM pre-training, retriever fine-tuning (Eq. 5 supervision),
updater training (GoldEn supervision) and path-ranker training — then
answers multi-hop retrieval queries with explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.data.corpus import Corpus
from repro.data.hotpot import HotpotDataset, HotpotQuestion
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.encoder.pretrain import MLMPretrainer, PretrainConfig
from repro.ingest.embedding_store import EmbeddingStore, EmbeddingStoreError
from repro.ingest.fingerprint import construction_fingerprint
from repro.pipeline.multihop import DocumentPath, MultiHopConfig, MultiHopRetriever
from repro.pipeline.path_ranker import PathRanker, PathRankerConfig, PathRankerTrainer
from repro.retriever.negatives import mine_training_examples
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore, build_triple_store
from repro.retriever.trainer import RetrieverTrainer, TrainerConfig
from repro.storage.atomic import atomic_write_npz
from repro.text.sentences import split_sentences
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocab
from repro.triples.construct import ConstructionConfig
from repro.updater.updater import QuestionUpdater, UpdaterConfig, UpdaterTrainer


@dataclass
class FrameworkConfig:
    """All stage configurations in one place."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    construction: ConstructionConfig = field(default_factory=ConstructionConfig)
    # MLM pre-training is opt-in: at CPU scale the MLM optimum (frequency-
    # predictive embeddings) conflicts with the matching geometry that the
    # strong lexical initialization provides, and measurably hurts
    # retrieval. Pass a PretrainConfig to enable it for ablations.
    pretrain: Optional[PretrainConfig] = None
    retriever: TrainerConfig = field(default_factory=TrainerConfig)
    updater: UpdaterConfig = field(default_factory=UpdaterConfig)
    ranker: Optional[PathRankerConfig] = field(default_factory=PathRankerConfig)
    multihop: MultiHopConfig = field(default_factory=MultiHopConfig)
    max_train_questions: Optional[int] = None
    max_ranker_questions: int = 200
    # worker processes for corpus triple extraction during fit(); the
    # parallel build is byte-identical to the sequential one (see
    # repro.ingest.pipeline), so this is purely a wall-clock knob
    ingest_workers: int = 1
    verbose: bool = False


class TripleFactRetrieval:
    """The complete system: triple store + retriever + updater + ranker."""

    def __init__(self, config: Optional[FrameworkConfig] = None):
        self.config = config or FrameworkConfig()
        self.store: Optional[TripleStore] = None
        self.encoder: Optional[MiniBertEncoder] = None
        self.retriever: Optional[SingleRetriever] = None
        self.updater: Optional[QuestionUpdater] = None
        self.multihop: Optional[MultiHopRetriever] = None
        self.ranker: Optional[PathRanker] = None

    # -- training -----------------------------------------------------------
    def fit(self, corpus: Corpus, dataset: HotpotDataset) -> "TripleFactRetrieval":
        """Train every stage on ``dataset.train`` over ``corpus``."""
        cfg = self.config
        train_questions: Sequence[HotpotQuestion] = dataset.train
        if cfg.max_train_questions is not None:
            train_questions = train_questions[: cfg.max_train_questions]

        self.store = build_triple_store(
            corpus, config=cfg.construction, workers=cfg.ingest_workers
        )

        texts = [d.text for d in corpus] + [q.text for q in train_questions]
        vocab = Vocab.from_texts(texts, tokenize)
        self.encoder = MiniBertEncoder(vocab, cfg.encoder)
        self.encoder.fit_idf(
            [self.store.field_text(d.doc_id) for d in corpus]
        )

        if cfg.pretrain is not None:
            sentences = [s for d in corpus for s in split_sentences(d.text)]
            MLMPretrainer(self.encoder, cfg.pretrain).train(
                sentences, verbose=cfg.verbose
            )

        self.retriever = SingleRetriever(self.encoder, self.store)
        examples = mine_training_examples(train_questions, corpus, self.store)
        RetrieverTrainer(self.retriever, cfg.retriever).train(
            examples, verbose=cfg.verbose
        )

        self.updater = QuestionUpdater(self.encoder, cfg.updater)
        updater_trainer = UpdaterTrainer(self.updater, cfg.updater)
        updater_examples = updater_trainer.build_examples(
            train_questions, corpus, self.store
        )
        updater_trainer.train(updater_examples, verbose=cfg.verbose)

        self.multihop = MultiHopRetriever(
            self.retriever, self.updater, cfg.multihop
        )

        if cfg.ranker is not None:
            self.ranker = PathRanker(self.retriever, cfg.ranker)
            ranker_trainer = PathRankerTrainer(self.ranker, cfg.ranker)
            ranker_examples = ranker_trainer.build_examples(
                list(train_questions)[: cfg.max_ranker_questions],
                corpus,
                self.multihop,
            )
            ranker_trainer.train(ranker_examples, verbose=cfg.verbose)
        return self

    # -- inference -----------------------------------------------------------
    def _require_fit(self) -> None:
        if self.multihop is None:
            raise RuntimeError("call fit() before retrieving")

    def retrieve_documents(self, question: str, k: int = 8):
        """One-hop retrieval with triple-level explanations."""
        self._require_fit()
        return self.retriever.retrieve(question, k=k)

    def retrieve_paths(
        self, question: str, k: int = 8, rerank: bool = True
    ) -> List[DocumentPath]:
        """Multi-hop path retrieval; reranked when a ranker was trained."""
        self._require_fit()
        # over-generate candidates when a reranking stage follows
        n_candidates = k * 4 if (rerank and self.ranker is not None) else k
        paths = self.multihop.retrieve_paths(question, k_paths=n_candidates)
        if rerank and self.ranker is not None:
            return self.ranker.rerank(question, paths, k=k)
        return paths[:k]

    def retrieve_paths_many(
        self, questions: Sequence[str], k: int = 8, rerank: bool = True
    ) -> List[List[DocumentPath]]:
        """Multi-hop path retrieval for a batch of questions.

        Routes through :meth:`MultiHopRetriever.retrieve_paths_batch` so
        encoding and both hops amortize over the whole batch — the same
        bulk path ``repro query --batch`` and ``repro.serve`` exercise.
        """
        self._require_fit()
        questions = list(questions)
        if not questions:
            return []
        n_candidates = k * 4 if (rerank and self.ranker is not None) else k
        path_lists = self.multihop.retrieve_paths_batch(
            questions, k_paths=n_candidates
        )
        if rerank and self.ranker is not None:
            return [
                self.ranker.rerank(question, paths, k=k)
                for question, paths in zip(questions, path_lists)
            ]
        return [paths[:k] for paths in path_lists]

    # -- persistence ----------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist the trained system (encoder, heads, store, embeddings).

        The corpus itself is not saved — pass the same corpus to
        :meth:`load` (corpora are deterministic functions of a world seed).
        The triple embedding matrix is exported to a versioned
        ``embeddings/`` store so :meth:`load` warm-starts without a single
        encoder call. Every artifact write is atomic.
        """
        self._require_fit()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.encoder.save(directory / "encoder")
        self.store.save(directory / "store.json")
        self.retriever.export_embeddings(
            construction_fingerprint=construction_fingerprint(
                self.config.construction, self.store.corpus.titles()
            )
        ).save(directory / "embeddings")
        atomic_write_npz(
            directory / "heads.npz",
            {
                "updater_weight": self.updater.head.weight.data,
                "updater_bias": self.updater.head.bias.data,
                **(
                    {
                        "ranker_weight": self.ranker.head.weight.data,
                        "ranker_bias": self.ranker.head.bias.data,
                    }
                    if self.ranker is not None
                    else {}
                ),
            },
        )

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        corpus: Corpus,
        config: Optional[FrameworkConfig] = None,
    ) -> "TripleFactRetrieval":
        """Restore a system saved by :meth:`save` over the same corpus.

        Warm start: when the saved ``embeddings/`` store is present and
        its row hashes + encoder fingerprint still match, no triple is
        re-encoded — the scoring matrix mmaps straight off disk. A
        missing, corrupt, or stale store degrades to re-encoding exactly
        the rows that changed (all of them, in the worst case).
        """
        directory = Path(directory)
        system = cls(config)
        cfg = system.config
        system.encoder = MiniBertEncoder.load(
            directory / "encoder", config=cfg.encoder
        )
        system.store = TripleStore.load(directory / "store.json", corpus)
        system.retriever = SingleRetriever(system.encoder, system.store)
        try:
            system.retriever.attach_embeddings(
                EmbeddingStore.open(directory / "embeddings")
            )
        except EmbeddingStoreError:
            system.retriever.detach_embeddings()
        system.retriever.refresh_embeddings()
        system.updater = QuestionUpdater(system.encoder, cfg.updater)
        heads = np.load(directory / "heads.npz")
        system.updater.head.weight.data = heads["updater_weight"]
        system.updater.head.bias.data = heads["updater_bias"]
        system.multihop = MultiHopRetriever(
            system.retriever, system.updater, cfg.multihop
        )
        if "ranker_weight" in heads:
            system.ranker = PathRanker(system.retriever, cfg.ranker)
            system.ranker.head.weight.data = heads["ranker_weight"]
            system.ranker.head.bias.data = heads["ranker_bias"]
        return system
