"""Unit tests for the OIE extractors (triple, base parsing, pattern, MinIE,
union)."""

from repro.oie.base import parse_clause, split_conjuncts, strip_determiners
from repro.oie.minie import MinIEExtractor
from repro.oie.pattern import PatternExtractor
from repro.oie.triple import Triple
from repro.oie.union import UnionExtractor, dedupe_triples, extract_union


class TestTriple:
    def test_flatten(self):
        t = Triple("A", "is", "B")
        assert t.flatten() == "A is B"

    def test_flatten_with_extras(self):
        t = Triple("A", "is", "B", extra_objects=("C", "D"))
        assert t.flatten() == "A is B C D"

    def test_content_key_case_insensitive(self):
        a = Triple("A", "Is", "B")
        b = Triple("a", "is", "b")
        assert a.content_key() == b.content_key()

    def test_with_extra(self):
        t = Triple("A", "is", "B").with_extra(("C",))
        assert t.is_fusion and t.extra_objects == ("C",)

    def test_tokens_lowercased(self):
        assert Triple("The Club", "Won", "It").tokens() == [
            "the", "club", "won", "it",
        ]


class TestParseClause:
    def test_copula(self):
        clause = parse_clause("Millwall Athletic is a football club.")
        assert clause.subject_text == "Millwall Athletic"
        assert clause.verb_text == "is"
        assert clause.is_copula

    def test_verb_group(self):
        clause = parse_clause("The club was founded in 1885.")
        assert clause.verb_text == "was founded"

    def test_prepositional_segments(self):
        clause = parse_clause("Davis played at centre for Millwall.")
        preps = [s.preposition for s in clause.segments]
        assert preps == ["at", "for"]

    def test_no_verb_returns_none(self):
        assert parse_clause("Complete nonsense fragment") is None

    def test_empty_returns_none(self):
        assert parse_clause("") is None

    def test_split_conjuncts(self):
        assert split_conjuncts("a b , c and d".split()) == [
            ["a", "b"], ["c"], ["d"],
        ]

    def test_strip_determiners(self):
        assert strip_determiners(["the", "big", "club"]) == ["big", "club"]
        assert strip_determiners(["also", "the", "club"]) == ["club"]


class TestPatternExtractor:
    def test_maximal_triple(self):
        triples = PatternExtractor().extract_sentence(
            "Millwall Athletic was founded in 1885."
        )
        assert any(
            t.predicate == "was founded" and "1885" in t.object for t in triples
        )

    def test_conjunct_noise_cascade(self):
        triples = PatternExtractor().extract_sentence(
            "Lynd is a Quaker, peace activist and historian."
        )
        noisy = [t for t in triples if t.confidence <= 0.4]
        assert noisy, "expected Fig.3-style noise triples"
        assert any(t.subject != "Lynd" for t in noisy)

    def test_cascade_disabled(self):
        extractor = PatternExtractor(emit_noise_cascade=False)
        triples = extractor.extract_sentence(
            "Lynd is a Quaker, peace activist and historian."
        )
        assert all(t.subject == "Lynd" for t in triples)

    def test_coref_applied_in_document(self):
        triples = PatternExtractor().extract_document(
            "Davis was a footballer. He played for Millwall.",
            title="Davis",
        )
        assert any(
            t.subject == "Davis" and "Millwall" in t.object for t in triples
        )


class TestMinIEExtractor:
    def test_minimizes_determiners(self):
        triples = MinIEExtractor().extract_sentence(
            "Millwall Athletic is a professional football club."
        )
        assert any(t.object == "professional football club" for t in triples)

    def test_splits_prepositional_attachment(self):
        triples = MinIEExtractor().extract_sentence(
            "Davis played at centre forward for Millwall."
        )
        predicates = {t.predicate for t in triples}
        assert "played at" in predicates and "played for" in predicates

    def test_long_sentence_compact_objects(self):
        triples = MinIEExtractor().extract_sentence(
            "Gibson played 17 seasons in Major League Baseball for the Cardinals."
        )
        assert all(len(t.object.split()) <= 4 for t in triples)


class TestUnion:
    def test_dedupe(self):
        a = Triple("A", "is", "B", source="x")
        b = Triple("A", "is", "B", source="y")
        assert len(dedupe_triples([a, b])) == 1

    def test_union_has_both_extractors(self):
        triples = extract_union(
            "Millwall Athletic is a football club. It was founded in 1885.",
            title="Millwall Athletic",
            entity_kind="club",
        )
        sources = {t.source for t in triples}
        assert "pattern" in sources and "minie" in sources

    def test_union_covers_facts(self, corpus):
        doc = next(d for d in corpus if d.entity.kind == "band")
        triples = extract_union(doc.text, title=doc.title, entity_kind="band")
        text = " ".join(t.flatten() for t in triples)
        for fact in doc.facts:
            assert fact.value_text in text
