"""Property-based tests for the text layer (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.sentences import split_sentences
from repro.text.stem import stem
from repro.text.tokenize import (
    jaccard,
    longest_common_subsequence,
    tokenize,
    word_shingles,
)

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
token_lists = st.lists(words, max_size=15)
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " .,!?'-", max_size=200
)


class TestTokenizeProperties:
    @given(texts)
    def test_tokenize_never_crashes_and_lowercases(self, text):
        for token in tokenize(text):
            assert token == token.lower()

    @given(texts)
    def test_tokens_contain_no_whitespace(self, text):
        for token in tokenize(text):
            assert " " not in token and token != ""

    @given(token_lists)
    def test_tokenize_roundtrip_preserves_words(self, tokens):
        text = " ".join(tokens)
        assert tokenize(text) == tokens


class TestStemProperties:
    @given(words)
    def test_stem_never_longer(self, word):
        stemmed = stem(word)
        assert len(stemmed) <= len(word) + 1  # +1 for the -e restore

    @given(words)
    def test_stem_deterministic(self, word):
        assert stem(word) == stem(word)

    @given(words)
    def test_stem_nonempty(self, word):
        assert stem(word)


class TestSentenceProperties:
    @given(texts)
    def test_split_never_crashes(self, text):
        sentences = split_sentences(text)
        assert isinstance(sentences, list)

    @given(texts)
    def test_no_empty_sentences(self, text):
        assert all(s.strip() for s in split_sentences(text))

    @given(st.lists(words, min_size=1, max_size=5))
    def test_content_preserved(self, tokens):
        text = " ".join(tokens).capitalize() + "."
        joined = " ".join(split_sentences(text))
        for token in tokens:
            assert token in joined.lower()


class TestSimilarityProperties:
    @given(token_lists, token_lists)
    def test_jaccard_symmetric(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(token_lists)
    def test_jaccard_self_is_one(self, a):
        assert jaccard(a, a) == 1.0

    @given(token_lists, token_lists)
    def test_jaccard_bounded(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(token_lists, token_lists)
    def test_lcs_length_bounded(self, a, b):
        lcs = longest_common_subsequence(a, b)
        assert len(lcs) <= min(len(a), len(b))

    @given(token_lists)
    def test_lcs_with_self_is_identity(self, a):
        assert longest_common_subsequence(a, a) == a

    @given(token_lists, token_lists)
    def test_lcs_is_subsequence_of_both(self, a, b):
        lcs = longest_common_subsequence(a, b)

        def is_subsequence(sub, seq):
            it = iter(seq)
            return all(x in it for x in sub)

        assert is_subsequence(lcs, a) and is_subsequence(lcs, b)

    @given(token_lists, st.integers(min_value=1, max_value=4))
    def test_shingles_size(self, tokens, n):
        shingles = word_shingles(tokens, n=n)
        if len(tokens) >= n:
            assert len(shingles) <= len(tokens) - n + 1
