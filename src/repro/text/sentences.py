"""Sentence splitting for Wikipedia-style prose.

Replaces NLTK's punkt splitter. Handles the abbreviation patterns that
actually occur in encyclopedic text (initials, ``F.C.``, ``U.S.``, titles)
without a trained model.
"""

from __future__ import annotations

import re
from typing import List

# Abbreviations after which a period does NOT end the sentence.
_ABBREVIATIONS = {
    "mr",
    "mrs",
    "ms",
    "dr",
    "prof",
    "sr",
    "jr",
    "st",
    "no",
    "vs",
    "etc",
    "inc",
    "ltd",
    "co",
    "corp",
    "fc",
    "f.c",
    "u.s",
    "u.k",
    "e.g",
    "i.e",
    "approx",
    "dept",
    "est",
}

_BOUNDARY_RE = re.compile(r"([.!?])(\s+)(?=[A-Z0-9\"'(])")

# Titles are "strong" abbreviations: a period after them never ends the
# sentence. Other abbreviations (F.C., U.S.) are "weak": the period ends
# the sentence when the next word is a typical sentence starter.
_STRONG_ABBREVIATIONS = {"mr", "mrs", "ms", "dr", "prof", "st", "no", "vs"}
_SENTENCE_STARTERS = {
    "He", "She", "It", "They", "The", "In", "After", "Before", "His",
    "Her", "Its", "Their", "This", "These", "A", "An",
}


def _is_abbreviation(prefix: str, following: str) -> bool:
    """True if a period after ``prefix`` does NOT end the sentence.

    ``following`` is the text after the whitespace (used to disambiguate
    weak abbreviations: "Millwall F.C. He retired." does split because
    "He" is a typical sentence starter).
    """
    match = re.search(r"([A-Za-z][A-Za-z.]*)$", prefix)
    if not match:
        return False
    word = match.group(1).lower().rstrip(".")
    bare = word.rsplit(".", 1)[-1]
    if bare in _STRONG_ABBREVIATIONS or word in _STRONG_ABBREVIATIONS:
        return True
    is_known = word in _ABBREVIATIONS or bare in _ABBREVIATIONS or len(bare) == 1
    if not is_known:
        return False
    next_word = following.split()[0] if following.split() else ""
    if next_word.rstrip(".,;") in _SENTENCE_STARTERS:
        return False
    return True


def split_sentences(text: str) -> List[str]:
    """Split ``text`` into sentences.

    >>> split_sentences("He played for Millwall F.C. in Wales. He retired.")
    ['He played for Millwall F.C. in Wales.', 'He retired.']
    """
    text = text.strip()
    if not text:
        return []
    sentences: List[str] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        end = match.end(1)
        if match.group(1) == "." and _is_abbreviation(
            text[start : match.start(1)], text[match.end(0) :]
        ):
            continue
        sentence = text[start:end].strip()
        if sentence:
            sentences.append(sentence)
        start = match.end(0)
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences
