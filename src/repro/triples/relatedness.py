"""Noise-triple pruning via the relatedness score (paper Eq. 1).

``R(t, d) = |E_t ∩ E_d| / |E_d|`` where ``E_t`` are the entities linked in
the triple and ``E_d`` all entities linked in the document. Triples that
link no document entity ("Local newspapers covered the story") score 0 and
are pruned as noise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.index.entity_index import EntityIndex
from repro.oie.triple import Triple
from repro.text.tokenize import tokenize


def triple_entities(triple: Triple, linker: EntityIndex) -> Set[str]:
    """``E_t``: entities whose surface form appears in the triple."""
    return set(linker.link(triple.flatten()))


def relatedness(
    triple: Triple, doc_entities: Sequence[str], linker: EntityIndex
) -> float:
    """Eq. 1 relatedness of ``triple`` to a document with entities ``E_d``.

    Gated on the *subject* naming an entity: "the required information of
    the related document for the question is always concerned with an
    entity" (paper Sec. III-A) — a triple whose subject is no entity at all
    ("A rival club established in 1902 ...", Fig. 3 items 6-9) is noise no
    matter which entities its object happens to mention.
    """
    doc_set = set(doc_entities)
    if not doc_set:
        return 0.0
    subject_entities = linker.link(triple.subject)
    if not subject_entities:
        return 0.0
    # the subject must essentially *be* an entity mention: "Several
    # residents born in Oakdale" contains the entity Oakdale yet is not
    # about it — require entity tokens to cover most of the subject
    subject_tokens = [t for t in tokenize(triple.subject) if t[:1].isalnum()]
    entity_tokens = sum(
        len([t for t in tokenize(name) if t[:1].isalnum()])
        for name in subject_entities
    )
    if subject_tokens and entity_tokens / len(subject_tokens) < 0.5:
        return 0.0
    linked = triple_entities(triple, linker)
    return len(linked & doc_set) / len(doc_set)


def prune_noise(
    triples: Sequence[Triple],
    doc_entities: Sequence[str],
    linker: EntityIndex,
    min_relatedness: float = 1e-9,
) -> Tuple[List[Triple], List[float]]:
    """Drop triples whose relatedness falls below ``min_relatedness``.

    Returns the surviving triples and their scores (aligned lists). When
    *every* triple would be pruned (a pathological document with no linked
    entities), the input is returned unpruned so the set stays complete.
    """
    scored = [
        (triple, relatedness(triple, doc_entities, linker)) for triple in triples
    ]
    kept = [(t, s) for t, s in scored if s >= min_relatedness]
    if not kept:
        kept = scored
    survivors = [t for t, _ in kept]
    scores = [s for _, s in kept]
    return survivors, scores
