"""Surface templates for documents and questions.

Every relation has several paraphrase variants. Documents and questions draw
variants independently, which creates the synonymy gap the paper's semantic
retriever exploits over BM25 (e.g. a document says "was established in 1885"
while the question asks "when was ... founded").

Template conventions: ``{s}`` = subject surface form, ``{o}`` = object/value
surface form, ``{pron}`` = subject pronoun ("He"/"She"/"It"/"The band"...).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: relation -> list of declarative sentence templates (document side).
SENTENCE_TEMPLATES: Dict[str, List[str]] = {
    "plays_for": [
        "{pron} played at centre forward for {o}.",
        "{pron} spent his career with {o}.",
        "{pron} turned out for {o}.",
        "{pron} was a forward at {o}.",
    ],
    "member_of": [
        "{pron} was a founding member of {o}.",
        "{pron} performed with {o}.",
        "{pron} joined the group {o}.",
    ],
    "born_in": [
        "{pron} was born in {o}.",
        "{pron} was a native of {o}.",
    ],
    "educated_at": [
        "{pron} was educated at {o}.",
        "{pron} studied at {o}.",
        "{pron} graduated from {o}.",
    ],
    "won": [
        "{pron} won the {o}.",
        "{pron} was awarded the {o}.",
        "{pron} received the {o}.",
    ],
    "occupation": [
        "{pron} worked as a {o}.",
        "{pron} was known as a {o}.",
    ],
    "birth_year": [
        "{pron} was born in {o}.",
    ],
    "founded_year": [
        "{pron} was founded in {o}.",
        "{pron} was established in {o}.",
        "{pron} was formed in {o}.",
        "{pron} came into existence in {o}.",
    ],
    "based_in": [
        "{pron} is based in {o}.",
        "{pron} plays its home games in {o}.",
    ],
    "league": [
        "{pron} competes in the {o}.",
        "{pron} is a member of the {o}.",
    ],
    "formed_year": [
        "{pron} was formed in {o}.",
        "{pron} began performing in {o}.",
        "{pron} was started in {o}.",
    ],
    "origin": [
        "{pron} comes from {o}.",
        "{pron} originated in {o}.",
    ],
    "genre": [
        "{pron} plays {o} music.",
        "{pron} is known for its {o} sound.",
    ],
    "member_count": [
        "{pron} consists of {o} members.",
        "{pron} has {o} members.",
    ],
    "label": [
        "{pron} is signed to {o}.",
        "{pron} records for {o}.",
    ],
    "located_in": [
        "{pron} is located in {o}.",
        "{pron} lies in {o}.",
    ],
    "population": [
        "{pron} has a population of {o}.",
        "{pron} is home to {o} residents.",
    ],
    "city_founded_year": [
        "{pron} was founded in {o}.",
        "{pron} dates back to {o}.",
    ],
    "headquartered_in": [
        "{pron} is headquartered in {o}.",
        "{pron} has its head office in {o}.",
    ],
    "industry": [
        "{pron} operates in the {o} industry.",
        "{pron} is active in {o}.",
    ],
    "company_founded_year": [
        "{pron} was founded in {o}.",
        "{pron} was incorporated in {o}.",
    ],
    "directed_by": [
        "{pron} was directed by {o}.",
        "{pron} is a work of the director {o}.",
    ],
    "released_year": [
        "{pron} was released in {o}.",
        "{pron} premiered in {o}.",
    ],
    "film_genre": [
        "{pron} is a {o} film.",
    ],
    "univ_located_in": [
        "{pron} is located in {o}.",
        "{pron} has its campus in {o}.",
    ],
    "established_year": [
        "{pron} was established in {o}.",
        "{pron} was founded in {o}.",
    ],
    "award_field": [
        "{pron} honours achievement in {o}.",
        "{pron} is given for excellence in {o}.",
    ],
    "capital": [
        "{pron} has its capital at {o}.",
        "The capital of {s} is {o}.",
    ],
}

#: Bridge-question templates, keyed by the second-hop relation. ``{desc}``
#: is the description of the bridge entity via the first-hop relation.
BRIDGE_QUESTION_TEMPLATES: Dict[str, List[str]] = {
    "founded_year": [
        "When was the football club that {desc} founded?",
        "In what year was the club that {desc} established?",
    ],
    "based_in": [
        "Where is the football club that {desc} based?",
        "In which city does the club that {desc} play?",
    ],
    "league": [
        "Which league does the club that {desc} compete in?",
    ],
    "formed_year": [
        "When was the band that {desc} formed?",
        "In what year did the band that {desc} begin performing?",
    ],
    "origin": [
        "Where does the band that {desc} come from?",
    ],
    "genre": [
        "What genre of music does the band that {desc} play?",
    ],
    "member_count": [
        "How many members does the band that {desc} have?",
    ],
    "label": [
        "Which record label is the band that {desc} signed to?",
    ],
    "located_in": [
        "In which country is the city where {desc} located?",
    ],
    "population": [
        "What is the population of the city where {desc}?",
    ],
    "established_year": [
        "When was the university that {desc} established?",
        "In what year was the institution where {desc} founded?",
    ],
    "univ_located_in": [
        "In which city is the university that {desc}?",
    ],
    "headquartered_in": [
        "Where is the company that {desc} headquartered?",
    ],
    "industry": [
        "In which industry does the company that {desc} operate?",
    ],
    "award_field": [
        "In what field is the award that {desc} given?",
    ],
}

#: First-hop descriptions, keyed by relation; ``{s}`` = anchor entity name.
#: These describe the *bridge* entity through its link to the anchor.
BRIDGE_DESC_TEMPLATES: Dict[str, List[str]] = {
    "plays_for": [
        "{s} played at centre forward for",
        "{s} spent his career at",
        "{s} appeared for",
    ],
    "member_of": [
        "{s} performed with",
        "{s} was a member of",
    ],
    "educated_at": [
        "{s} studied at",
        "{s} graduated from",
    ],
    "won": [
        "{s} won",
        "{s} received",
    ],
    "born_in": [
        "{s} was born",
        "{s} grew up",
    ],
    "based_in": [
        "{s} plays its home games",
    ],
    "origin": [
        "{s} originated",
    ],
    "label": [
        "{s} records for",
    ],
    "directed_by": [
        "directed {s}",
        "made the film {s}",
    ],
}

#: Comparison-question templates, keyed by the compared relation.
#: ``{a}`` / ``{b}`` are the two entity names.
COMPARISON_QUESTION_TEMPLATES: Dict[str, List[str]] = {
    "member_count": [
        "Did {a} and {b} have the same number of members?",
        "Do the bands {a} and {b} consist of the same number of members?",
    ],
    "formed_year": [
        "Which band was formed first, {a} or {b}?",
        "Was {a} formed before {b}?",
    ],
    "genre": [
        "Do {a} and {b} play the same genre of music?",
    ],
    "founded_year": [
        "Which football club was founded first, {a} or {b}?",
        "Was the club {a} established before {b}?",
    ],
    "league": [
        "Do {a} and {b} compete in the same league?",
    ],
    "birth_year": [
        "Who was born first, {a} or {b}?",
    ],
    "occupation": [
        "Did {a} and {b} have the same occupation?",
    ],
    "released_year": [
        "Which film was released first, {a} or {b}?",
    ],
    "population": [
        "Which city has the larger population, {a} or {b}?",
    ],
}

#: Question-side synonyms for occupations. The document always uses the
#: canonical word; a descriptive question may use the synonym instead —
#: the synonymy gap (paper Sec. I) that pure lexical matching cannot cross
#: and the fine-tuned encoder must learn.
OCCUPATION_SYNONYMS: Dict[str, str] = {
    "footballer": "football player",
    "historian": "scholar",
    "novelist": "writer",
    "architect": "designer",
    "physicist": "scientist",
    "journalist": "reporter",
    "composer": "songwriter",
    "sculptor": "artist",
    "actor": "performer",
    "engineer": "technician",
}

#: Pronoun used in document sentences after the first, per entity kind.
KIND_PRONOUNS: Dict[str, Tuple[str, ...]] = {
    "person": ("He", "She"),
    "club": ("The club", "It"),
    "band": ("The band", "It"),
    "city": ("The city", "It"),
    "country": ("The country", "It"),
    "company": ("The company", "It"),
    "film": ("The film", "It"),
    "university": ("The university", "It"),
    "award": ("The award", "It"),
}

#: Introductory sentence per entity kind; ``{name}`` = entity name,
#: ``{extra}`` = kind-specific detail phrase.
INTRO_TEMPLATES: Dict[str, List[str]] = {
    "person": [
        "{name} was a {extra}.",
        "{name} is a {extra}.",
    ],
    "club": [
        "{name} is a professional football club.",
        "{name} is an association football club.",
    ],
    "band": [
        "{name} is a musical group.",
        "{name} are a rock band.",
    ],
    "city": [
        "{name} is a city.",
        "{name} is an urban settlement.",
    ],
    "country": [
        "{name} is a sovereign country.",
    ],
    "company": [
        "{name} is a commercial company.",
    ],
    "film": [
        "{name} is a feature film.",
    ],
    "university": [
        "{name} is an institution of higher education.",
    ],
    "award": [
        "{name} is an annual prize.",
    ],
}

#: Distractor sentence templates, appended to pad documents with noise the
#: retriever must ignore (paper Sec. I: "most information in the document is
#: not related to the question"). Crucially their subjects are *not*
#: entities ("A rival club", "Local historians") while their objects reuse
#: question-colliding tokens — years, city names, relation verbs — so full-
#: text lexical matching picks up false signal that Eq. 1 relatedness
#: pruning removes from the triple-fact field.
DISTRACTOR_TEMPLATES: List[str] = [
    "A rival club established in {year} also drew crowds in {city}.",
    "An unrelated band formed in {year} once performed in {city}.",
    "Local historians founded a society in {year}.",
    "A touring side from {city} played an exhibition match in {year}.",
    "An earlier venue built in {year} stood near {city}.",
    "A defunct company incorporated in {year} kept an office in {city}.",
    "Several residents born in {city} wrote memoirs about the period.",
    "A commemorative plaque was unveiled in {year}.",
    "Local newspapers in {city} covered the story at the time.",
    "A festival founded in {year} is still observed in {city}.",
]
