"""Engine-level tests: two-phase pipeline, parallelism, result cache.

The contract under test: ``--jobs N`` and the per-file result cache are
*pure accelerations* — any combination of (jobs, cache temperature)
produces a byte-identical report — and the cache invalidates on exactly
the right events: file content change, config change, ruleset version
bump. Cache-invalidation tests carry the ``lint_cache`` marker
(``pytest -m lint_cache``).
"""

import json
import textwrap

import pytest

import repro.analysis.cache as cache_mod
from repro.analysis import LintConfig, render_json, run_lint
from repro.analysis.cache import LintCache, run_fingerprint
from repro.cli import main

CLEAN = 'GREETING = "hello"\n\nUSED = len(GREETING)\n'

BARE_EXCEPT = textwrap.dedent(
    """
    def guard(fn):
        try:
            return fn()
        except:
            return None


    VALUE = guard(list)
    """
).strip("\n") + "\n"

UNLOCKED_TRACKER = textwrap.dedent(
    """
    import threading


    class Tracker:
        def __init__(self):
            self._lock = threading.Lock()
            self._hits = 0

        def record(self):
            with self._lock:
                self._hits += 1

        def snapshot(self):
            return self._hits
    """
).strip("\n") + "\n"


def _mini_project(tmp_path):
    """A small multi-directory project with one file-local and one
    project-wide violation seeded."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "alpha.py").write_text(CLEAN, encoding="utf-8")
    (pkg / "beta.py").write_text(BARE_EXCEPT, encoding="utf-8")
    (pkg / "gamma.py").write_text(
        "import pkg.alpha\n\nTOTAL = pkg.alpha.USED + 1\n", encoding="utf-8"
    )
    serve = tmp_path / "serve"
    serve.mkdir()
    (serve / "svc.py").write_text(UNLOCKED_TRACKER, encoding="utf-8")
    (serve / "other.py").write_text(CLEAN, encoding="utf-8")
    config = LintConfig(
        paths=("pkg", "serve"),
        root=tmp_path,
        dead_symbol_allow=("guard", "Tracker"),
    )
    return [pkg, serve], config


def _signature(report):
    """Byte-exact representation of a report's findings.

    ``files_cached`` is excluded: it is telemetry about *how* the result
    was produced, not part of the result itself.
    """
    payload = json.loads(render_json(report))
    del payload["files_cached"]
    return json.dumps(payload, sort_keys=True)


class TestDeterminism:
    def test_both_phases_fire_on_the_mini_project(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        report = run_lint(paths, config=config)
        rules = {f.rule_id for f in report.findings}
        assert "bare-except" in rules  # phase 1 (file-local)
        assert "unlocked-shared-state" in rules  # phase 2 (project)

    def test_jobs_1_vs_4_byte_identical(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        sequential = run_lint(paths, config=config, jobs=1)
        parallel = run_lint(paths, config=config, jobs=4)
        assert sequential.findings == parallel.findings
        assert _signature(sequential) == _signature(parallel)
        assert sequential.files_scanned == parallel.files_scanned

    def test_cold_vs_warm_cache_byte_identical(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        cold = run_lint(paths, config=config, cache_dir=cache_dir)
        warm = run_lint(paths, config=config, cache_dir=cache_dir)
        uncached = run_lint(paths, config=config)
        assert cold.files_cached == 0
        assert warm.files_cached == warm.files_scanned == 5
        assert cold.findings == warm.findings == uncached.findings
        assert _signature(cold) == _signature(warm) == _signature(uncached)

    def test_parallel_warm_cache_byte_identical(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        run_lint(paths, config=config, cache_dir=cache_dir)
        warm_parallel = run_lint(
            paths, config=config, cache_dir=cache_dir, jobs=4
        )
        uncached = run_lint(paths, config=config)
        assert warm_parallel.files_cached == warm_parallel.files_scanned
        assert warm_parallel.findings == uncached.findings

    def test_project_findings_survive_warm_cache(self, tmp_path):
        # phase 2 rebuilds its model from *cached* summaries: the
        # unlocked-shared-state finding must not vanish on warm runs
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        run_lint(paths, config=config, cache_dir=cache_dir)
        warm = run_lint(paths, config=config, cache_dir=cache_dir)
        assert "unlocked-shared-state" in {
            f.rule_id for f in warm.findings
        }


@pytest.mark.lint_cache
class TestCacheInvalidation:
    def test_file_edit_invalidates_only_that_file(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        run_lint(paths, config=config, cache_dir=cache_dir)
        edited = tmp_path / "pkg" / "alpha.py"
        edited.write_text(
            CLEAN + "\n\ndef pick(k=None):\n    k = k or 10\n    return k\n"
            "\n\nPICKED = pick()\n",
            encoding="utf-8",
        )
        after = run_lint(paths, config=config, cache_dir=cache_dir)
        assert after.files_cached == after.files_scanned - 1
        assert "falsy-zero-default" in {f.rule_id for f in after.findings}

    def test_config_change_invalidates_everything(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        run_lint(paths, config=config, cache_dir=cache_dir)
        changed = LintConfig(
            paths=config.paths,
            root=config.root,
            dead_symbol_allow=config.dead_symbol_allow,
            allow={"bare-except": ("pkg/*.py",)},
        )
        after = run_lint(paths, config=changed, cache_dir=cache_dir)
        assert after.files_cached == 0
        assert "bare-except" not in {f.rule_id for f in after.findings}

    def test_ruleset_version_bump_invalidates_everything(
        self, tmp_path, monkeypatch
    ):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        before = run_lint(paths, config=config, cache_dir=cache_dir)
        monkeypatch.setattr(
            cache_mod, "RULESET_VERSION", cache_mod.RULESET_VERSION + 1
        )
        after = run_lint(paths, config=config, cache_dir=cache_dir)
        assert after.files_cached == 0
        assert after.findings == before.findings

    def test_select_change_invalidates(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        run_lint(paths, config=config, cache_dir=cache_dir)
        narrowed = run_lint(
            paths, select=["bare-except"], config=config, cache_dir=cache_dir
        )
        assert narrowed.files_cached == 0
        assert {f.rule_id for f in narrowed.findings} == {"bare-except"}

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        paths, config = _mini_project(tmp_path)
        cache_dir = tmp_path / ".repro-lint-cache"
        clean = run_lint(paths, config=config, cache_dir=cache_dir)
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        recovered = run_lint(paths, config=config, cache_dir=cache_dir)
        assert recovered.files_cached == 0
        assert recovered.findings == clean.findings

    def test_fingerprint_stable_across_processes(self, tmp_path):
        # the key derivation must not depend on dict iteration order or
        # interpreter state: same inputs -> same fingerprint
        config = LintConfig(root=tmp_path)
        first = run_fingerprint(config, ["a", "b"])
        second = run_fingerprint(config, ["b", "a"])  # order-insensitive
        assert first == second
        assert first != run_fingerprint(config, ["a"])

    def test_cache_store_load_roundtrip(self, tmp_path):
        cache = LintCache(tmp_path / "c", "fp")
        cache.store("mod.py", "sha", [], {3: {"bare-except"}}, None)
        loaded = cache.load("mod.py", "sha")
        assert loaded == ([], {3: {"bare-except"}}, None)
        assert cache.load("mod.py", "other-sha") is None


class TestCliIntegration:
    def test_output_writes_json_report(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "def pick(k=None):\n    k = k or 10\n    return k\n",
            encoding="utf-8",
        )
        out = tmp_path / "report" / "lint.json"
        out.parent.mkdir()
        code = main(
            ["lint", str(target), "--output", str(out), "--no-cache"]
        )
        assert code == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["counts"] == {"falsy-zero-default": 1}
        assert payload["version"] == 1

    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CLEAN, encoding="utf-8")
        cache_dir = tmp_path / "cache"
        assert main(
            ["lint", str(target), "--jobs", "2", "--cache-dir", str(cache_dir)]
        ) == 0
        assert cache_dir.exists()
        # warm: the summary line reports the cache hit
        assert main(
            ["lint", str(target), "--cache-dir", str(cache_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 cached" in out
