"""TF-IDF cosine scoring over one index field.

The classical baseline the paper cites (Chen et al. 2017 DrQA-style): log
term frequency, smoothed idf, cosine normalization on the document side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Sequence

from repro.index.postings import Field


@dataclass
class TfidfScorer:
    """ltc-style TF-IDF with cached document norms."""

    _norms: Dict[int, float] = dataclass_field(default_factory=dict, repr=False)
    _norm_field: Field = dataclass_field(default=None, repr=False)

    def idf(self, field: Field, term: str) -> float:
        """Smoothed idf: log((1 + N) / (1 + df)) + 1."""
        df = field.doc_freq(term)
        n = field.doc_count
        return math.log((1.0 + n) / (1.0 + df)) + 1.0

    def _ensure_norms(self, field: Field) -> None:
        if self._norm_field is field and self._norms:
            return
        sums: Dict[int, float] = {}
        for term in field.vocabulary():
            idf = self.idf(field, term)
            for posting in field.postings(term):
                weight = (1.0 + math.log(posting.term_freq)) * idf
                sums[posting.doc_id] = sums.get(posting.doc_id, 0.0) + weight * weight
        self._norms = {doc: math.sqrt(total) for doc, total in sums.items()}
        self._norm_field = field

    def scores(self, field: Field, query_terms: Sequence[str]) -> Dict[int, float]:
        """Cosine similarity of the query to every matching document."""
        self._ensure_norms(field)
        query_counts: Dict[str, int] = {}
        for term in query_terms:
            query_counts[term] = query_counts.get(term, 0) + 1
        accum: Dict[int, float] = {}
        query_norm_sq = 0.0
        for term, count in query_counts.items():
            idf = self.idf(field, term)
            query_weight = (1.0 + math.log(count)) * idf
            query_norm_sq += query_weight * query_weight
            for posting in field.postings(term):
                doc_weight = (1.0 + math.log(posting.term_freq)) * idf
                accum[posting.doc_id] = (
                    accum.get(posting.doc_id, 0.0) + query_weight * doc_weight
                )
        if not accum:
            return {}
        query_norm = math.sqrt(query_norm_sq) or 1.0
        return {
            doc: dot / (query_norm * (self._norms.get(doc) or 1.0))
            for doc, dot in accum.items()
        }

    def top_k(self, field: Field, query_terms: Sequence[str], k: int) -> List[tuple]:
        """Top ``k`` (doc_id, score) pairs, best first; stable by doc id."""
        scored = self.scores(field, query_terms)
        ranked = sorted(scored.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
