"""Quickstart: train the full Triple-Fact Retrieval system and ask it
multi-hop questions.

Builds a small synthetic Wikipedia world, fits every stage (triple
extraction + Algorithm 1, retriever fine-tuning, updater, path ranker) and
retrieves explained document paths. Runs in about a minute on a laptop CPU.

    python examples/quickstart.py
"""

from repro.core import FrameworkConfig, TripleFactRetrieval
from repro.data import World, WorldConfig, build_corpus, build_hotpot_dataset
from repro.encoder import EncoderConfig
from repro.pipeline import MultiHopConfig, PathRankerConfig
from repro.retriever import TrainerConfig
from repro.updater import UpdaterConfig


def main() -> None:
    print("building synthetic world + corpus ...")
    world = World(
        WorldConfig(
            n_persons=40, n_clubs=12, n_bands=12, n_cities=14,
            n_companies=6, n_films=8, n_universities=5, n_awards=4,
        )
    )
    corpus = build_corpus(world)
    dataset = build_hotpot_dataset(world, corpus, comparison_per_kind=8)
    print(f"  {len(corpus)} documents, "
          f"{len(dataset.train)} train / {len(dataset.test)} test questions")

    print("training the Triple-Fact Retrieval system ...")
    config = FrameworkConfig(
        encoder=EncoderConfig(dim=64, n_layers=1, n_heads=4, max_len=40,
                              residual_scale=0.05),
        retriever=TrainerConfig(epochs=2, lr=3e-4),
        updater=UpdaterConfig(epochs=1),
        ranker=PathRankerConfig(epochs=1),
        multihop=MultiHopConfig(k_hop1=6, k_hop2=3, k_paths=6),
        max_ranker_questions=40,
        verbose=True,
    )
    system = TripleFactRetrieval(config).fit(corpus, dataset)

    print("\n=== multi-hop retrieval with explanations ===")
    for question in dataset.test[:3]:
        print(f"\nQ: {question.text}")
        print(f"   gold path: {question.gold_titles} | answer: {question.answer}")
        paths = system.retrieve_paths(question.text, k=2)
        for rank, path in enumerate(paths, 1):
            print(f" #{rank} {path.titles}")
            print("    " + path.explain().replace("\n", "\n    "))

    hits = sum(
        1
        for question in dataset.test[:50]
        if any(
            frozenset(question.gold_titles) == path.title_set
            for path in system.retrieve_paths(question.text, k=8)
        )
    )
    print(f"\npath PEM@8 on 50 test questions: {hits}/50")


if __name__ == "__main__":
    main()
