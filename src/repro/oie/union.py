"""Union extraction: ``T_o = T_d^s ∪ T_d^m`` (paper Sec. IV-B).

Runs both extractors over a document and merges the results, de-duplicating
exact content matches while preserving provenance of the survivor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.oie.base import OpenIEExtractor
from repro.oie.minie import MinIEExtractor
from repro.oie.pattern import PatternExtractor
from repro.oie.triple import Triple


def dedupe_triples(triples: Sequence[Triple]) -> List[Triple]:
    """Drop exact content duplicates, keeping the first occurrence."""
    seen = set()
    out: List[Triple] = []
    for triple in triples:
        key = triple.content_key()
        if key not in seen:
            seen.add(key)
            out.append(triple)
    return out


class UnionExtractor(OpenIEExtractor):
    """The union of several extractors (default: pattern + MinIE)."""

    name = "union"

    def __init__(self, extractors: Optional[Sequence[OpenIEExtractor]] = None):
        self.extractors = list(extractors) if extractors else [
            PatternExtractor(),
            MinIEExtractor(),
        ]

    def extract_sentence(self, sentence: str, sentence_index: int = 0) -> List[Triple]:
        triples: List[Triple] = []
        for extractor in self.extractors:
            triples.extend(extractor.extract_sentence(sentence, sentence_index))
        return dedupe_triples(triples)

    def extract_document(
        self,
        text: str,
        title: Optional[str] = None,
        entity_kind: Optional[str] = None,
    ) -> List[Triple]:
        triples: List[Triple] = []
        for extractor in self.extractors:
            triples.extend(
                extractor.extract_document(text, title=title, entity_kind=entity_kind)
            )
        return dedupe_triples(triples)


def extract_union(
    text: str, title: Optional[str] = None, entity_kind: Optional[str] = None
) -> List[Triple]:
    """Convenience: union extraction with the default extractor pair."""
    return UnionExtractor().extract_document(text, title=title, entity_kind=entity_kind)
