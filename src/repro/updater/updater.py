"""The learned question updater (paper Sec. III-C).

The paper scores each candidate triple by encoding the concatenation
``L = q ⊕ t_i`` and, during training, comparing it to the encoding of the
ground next-hop question ``q'``; the highest-scoring triple becomes the
updater-clue. We realize this as a selector: a linear head over the
encoder's representation of ``q ⊕ t_i`` produces the clue score, trained
listwise so the gold clue (the triple whose concatenation is most similar
to the ground ``q'`` — exactly the paper's training-time criterion)
outranks its siblings. At inference no ``q'`` is needed: the head alone
scores the candidates in O(|T_d|).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import Corpus, Document
from repro.data.hotpot import HotpotQuestion
from repro.encoder.minibert import MiniBertEncoder
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.oie.triple import Triple
from repro.retriever.store import TripleStore
from repro.retriever.strategies import l2_normalize_rows, l2_normalize_vec
from repro.text.tokenize import tokenize
from repro.updater.golden import ground_clue_index
from repro.updater.question import compose_updated_question


@dataclass
class UpdaterConfig:
    """Updater model/training knobs."""

    epochs: int = 2
    lr: float = 1e-2
    logit_scale: float = 1.0
    max_candidates: int = 12
    clip_norm: float = 5.0
    seed: int = 23
    train_encoder: bool = False  # head-only by default (encoder is shared)
    # Use only the scalar novelty statistics as head input. Empirically
    # the high-dimensional embedding blocks *hurt* clue selection (a
    # linear head overfits ~200 noisy dimensions on a few hundred
    # examples); the 4 scalars carry the signal. Set False to include the
    # [enc(q ⊕ t); enc(t)] blocks.
    scalars_only: bool = True


class QuestionUpdater:
    """Selects the updater-clue triple and composes the new question."""

    def __init__(self, encoder: MiniBertEncoder, config: Optional[UpdaterConfig] = None):
        self.encoder = encoder
        self.config = config or UpdaterConfig()
        rng = np.random.RandomState(self.config.seed)
        # features per candidate: [enc(q ⊕ t); enc(t); scalars]. The scalar
        # block matters most: "this triple introduces a novel rare entity"
        # is a *statistic* of the token sets, not a fixed direction in
        # embedding space, so a linear head cannot recover it from bag-like
        # embeddings alone.
        self.n_scalar_features = 4
        feature_dim = (
            self.n_scalar_features
            if self.config.scalars_only
            else 2 * encoder.config.dim + self.n_scalar_features
        )
        self.head = Linear(feature_dim, 1, rng=rng)

    # -- scoring ---------------------------------------------------------
    def _concat_texts(self, question: str, triples: Sequence[Triple]) -> List[str]:
        return [f"{question} {t.flatten()}" for t in triples]

    def _scalar_features(
        self, question: str, triples: Sequence[Triple]
    ) -> np.ndarray:
        """(n, 4) novelty statistics per candidate triple.

        [idf-weighted novelty fraction, novel capitalized tokens,
        cos(enc(t), enc(q)), normalized triple length]
        """
        vocab = self.encoder.vocab
        weights = self.encoder._token_weights
        question_tokens = set(tokenize(question))
        question_vec = l2_normalize_vec(self.encoder.encode_numpy([question])[0])
        triple_vecs = self.encoder.encode_numpy([t.flatten() for t in triples])
        cosines = l2_normalize_rows(triple_vecs) @ question_vec
        rows = []
        for i, triple in enumerate(triples):
            tokens = tokenize(triple.flatten())
            total_idf = sum(weights[vocab.id_of(t)] for t in tokens) or 1.0
            novel_idf = sum(
                weights[vocab.id_of(t)]
                for t in tokens
                if t not in question_tokens
            )
            novel_caps = sum(
                1
                for word in triple.flatten().split()
                if word[:1].isupper() and word.lower() not in question_tokens
            )
            rows.append(
                [
                    novel_idf / total_idf,
                    min(novel_caps, 5) / 5.0,
                    float(cosines[i]),
                    min(len(tokens), 30) / 30.0,
                ]
            )
        return np.asarray(rows)

    def _features(self, question: str, triples: Sequence[Triple]) -> np.ndarray:
        """Feature matrix for the candidate triples (see ``scalars_only``)."""
        scalars = self._scalar_features(question, triples)
        if self.config.scalars_only:
            return scalars
        concat = self.encoder.encode_numpy(self._concat_texts(question, triples))
        triple_vecs = self.encoder.encode_numpy([t.flatten() for t in triples])
        return np.concatenate([concat, triple_vecs, scalars], axis=1)

    def score_triples(
        self, question: str, triples: Sequence[Triple]
    ) -> np.ndarray:
        """Clue scores for every candidate triple (no gradients)."""
        if not triples:
            return np.zeros(0)
        features = self._features(question, triples)
        return (features @ self.head.weight.data).reshape(-1) + float(
            self.head.bias.data[0]
        )

    def select_clue(
        self, question: str, triples: Sequence[Triple]
    ) -> Optional[Tuple[int, Triple]]:
        """The best clue triple (index, triple), or None without candidates."""
        scores = self.score_triples(question, triples)
        if scores.size == 0:
            return None
        index = int(scores.argmax())
        return index, triples[index]

    def update_question(self, question: str, triples: Sequence[Triple]) -> str:
        """One updater step: pick the clue and compose ``q'``."""
        selected = self.select_clue(question, triples)
        if selected is None:
            return question
        return compose_updated_question(question, selected[1])


class UpdaterTrainer:
    """Trains the updater head (and optionally the encoder) listwise."""

    def __init__(self, updater: QuestionUpdater, config: Optional[UpdaterConfig] = None):
        self.updater = updater
        self.config = config or updater.config
        self._rng = np.random.RandomState(self.config.seed)

    def build_examples(
        self,
        questions: Sequence[HotpotQuestion],
        corpus: Corpus,
        store: TripleStore,
    ) -> List[Tuple[str, List[Triple], int]]:
        """(question, hop-1 candidate triples, gold index) instances.

        Only bridge questions supervise the updater — for comparison
        questions both documents match the original question directly.
        """
        examples = []
        for question in questions:
            if not question.is_bridge or len(question.gold_titles) < 2:
                continue
            hop1 = corpus.by_title(question.gold_titles[0])
            hop2 = corpus.by_title(question.gold_titles[1])
            if hop1 is None or hop2 is None:
                continue
            triples = store.triples(hop1.doc_id)[: self.config.max_candidates]
            gold = ground_clue_index(triples, hop2)
            if gold is None or len(triples) < 2:
                continue
            examples.append((question.text, triples, gold))
        return examples

    def train(
        self,
        examples: Sequence[Tuple[str, List[Triple], int]],
        verbose: bool = False,
    ) -> List[float]:
        """Listwise training; returns per-epoch mean losses."""
        cfg = self.config
        updater = self.updater
        encoder_model = updater.encoder.model
        parameters = updater.head.parameters()
        if cfg.train_encoder:
            parameters = parameters + encoder_model.parameters()
        optimizer = Adam(parameters, lr=cfg.lr)
        losses: List[float] = []
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(examples))
            epoch_losses = []
            for i in order:
                question, triples, gold = examples[i]
                if cfg.train_encoder and not cfg.scalars_only:
                    encoder_model.train()
                    texts = updater._concat_texts(question, triples)
                    concat = updater.encoder.encode(texts)
                    triple_vecs = updater.encoder.encode(
                        [t.flatten() for t in triples]
                    )
                    scalars = Tensor(
                        updater._scalar_features(question, triples)
                    )
                    features = Tensor.concat(
                        [concat, triple_vecs, scalars], axis=1
                    )
                else:
                    features = Tensor(updater._features(question, triples))
                logits = updater.head(features).reshape(-1)
                logits = logits * cfg.logit_scale
                loss = -logits.softmax(axis=-1).log()[gold]
                for parameter in parameters:
                    parameter.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover - console output
                print(f"[updater] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={mean_loss:.4f}")
        encoder_model.eval()
        return losses
