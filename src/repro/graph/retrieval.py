"""Graph-assisted retrieval: candidate expansion and path reranking.

Two uses of the triple graph:

* :func:`graph_expand_candidates` — hop-2 candidate documents reachable
  from a hop-1 document along triple edges (a structured alternative to
  both full-corpus search and hyperlink-only expansion),
* :class:`GraphAssistedReranker` — boost candidate paths whose two
  documents are connected in the triple graph: a path with no entity-level
  connection is unlikely to be a coherent reasoning chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.graph.builder import TripleGraph
from repro.pipeline.multihop import DocumentPath


def graph_expand_candidates(
    graph: TripleGraph, doc_id: int, max_candidates: int = 20
) -> List[int]:
    """Documents connected to ``doc_id`` through the triple graph.

    For every entity the document's triples mention, collect documents
    whose triples also mention that entity or one of its graph neighbours.
    """
    entities = graph.doc_entities(doc_id)
    frontier: Set[str] = set(entities)
    for entity in entities:
        frontier.update(graph.neighbours(entity))
    candidates: Set[int] = set()
    for entity in frontier:
        candidates.update(graph.documents_of(entity))
    candidates.discard(doc_id)
    return sorted(candidates)[:max_candidates]


@dataclass
class GraphAssistedReranker:
    """Rerank document paths by triple-graph connectivity.

    ``bonus`` is added to a path's score when its two documents are
    connected in the graph; disconnected paths keep their base score, so
    the reranking is a tie-breaker rather than a hard filter (documents of
    a comparison question are legitimately unconnected).
    """

    graph: TripleGraph
    bonus: float = 0.25

    def rerank(
        self, paths: Sequence[DocumentPath], k: Optional[int] = None
    ) -> List[DocumentPath]:
        rescored: List[DocumentPath] = []
        for path in paths:
            connected = (
                len(path.doc_ids) >= 2
                and self.graph.docs_connected(path.doc_ids[0], path.doc_ids[1])
            )
            rescored.append(
                DocumentPath(
                    doc_ids=path.doc_ids,
                    titles=path.titles,
                    score=path.score + (self.bonus if connected else 0.0),
                    hop_scores=path.hop_scores,
                    clue=path.clue,
                    matched_triples=path.matched_triples,
                    updated_question=path.updated_question,
                )
            )
        rescored.sort(key=lambda p: (-p.score, p.doc_ids))
        if k is None:
            return rescored
        return rescored[: max(k, 0)]
