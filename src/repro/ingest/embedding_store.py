"""Persistent, versioned store for the stacked triple embedding matrix.

The single-matmul retrieval path (:class:`repro.retriever.single.
SingleRetriever`) scores queries against one L2-normalizable
``(total_triples, dim)`` float64 matrix plus a segment layout
(doc-id-ordered document ids and per-document row offsets). Re-deriving
that matrix means re-encoding every flattened triple — by far the most
expensive step of a cold start. This module persists it:

* ``manifest.json`` — format version, matrix geometry, the segment
  layout, per-document row hashes (:func:`~repro.ingest.fingerprint.
  triples_fingerprint` of the flattened triples each segment encodes)
  and the encoder / construction fingerprints the rows were computed
  under.
* ``embeddings-<digest>.f64`` — the raw row-major float64 matrix,
  content-addressed by digest so a new generation never overwrites the
  file an existing manifest points at.

Writes are crash-safe: the data file lands first under its new
content-addressed name, then the manifest is atomically replaced to
point at it, then stale generations are garbage-collected. A crash
between any two steps leaves a fully consistent (old or new) store.
Loads default to ``np.memmap`` so a multi-GB matrix warm-starts without
reading it eagerly; pages fault in as retrieval touches them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.storage.atomic import atomic_write_bytes, atomic_write_json

MANIFEST_NAME = "manifest.json"
STORE_VERSION = 1
_DTYPE = np.float64


class EmbeddingStoreError(RuntimeError):
    """The on-disk store is missing, corrupt, or from another version."""


@dataclass
class EmbeddingStore:
    """The stacked embedding matrix + segment layout, ready to persist.

    ``matrix`` holds the *unnormalized* encoder outputs; normalization is
    deterministic and cheap, so it is recomputed at attach time rather
    than doubling the artifact size.
    """

    matrix: np.ndarray  # (total_rows, dim) float64, possibly a memmap
    doc_ids: List[int]  # ascending document ids, one per segment
    offsets: List[int]  # segment start row per document
    row_hashes: Dict[int, str]  # doc_id -> triples_fingerprint
    encoder_fingerprint: str
    construction_fingerprint: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def dim(self) -> int:
        return int(self.matrix.shape[1]) if self.matrix.ndim == 2 else 0

    def segment(self, index: int) -> np.ndarray:
        """The embedding rows of the ``index``-th document segment."""
        start = self.offsets[index]
        stop = (
            self.offsets[index + 1]
            if index + 1 < len(self.offsets)
            else self.matrix.shape[0]
        )
        return self.matrix[start:stop]

    # -- persistence -----------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Write a new store generation under ``directory`` (crash-safe)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        matrix = np.ascontiguousarray(self.matrix, dtype=_DTYPE)
        raw = matrix.tobytes()
        digest = hashlib.sha256(raw).hexdigest()
        data_name = f"embeddings-{digest[:16]}.f64"
        atomic_write_bytes(directory / data_name, raw)
        manifest = {
            "version": STORE_VERSION,
            "dtype": "float64",
            "rows": int(matrix.shape[0]),
            "dim": int(matrix.shape[1]),
            "data_file": data_name,
            "doc_ids": [int(d) for d in self.doc_ids],
            "offsets": [int(o) for o in self.offsets],
            "row_hashes": {str(d): h for d, h in self.row_hashes.items()},
            "encoder_fingerprint": self.encoder_fingerprint,
            "construction_fingerprint": self.construction_fingerprint,
            "extra": self.extra,
        }
        atomic_write_json(directory / MANIFEST_NAME, manifest)
        # GC generations the manifest no longer references; done last so a
        # crash before this point leaves the previous generation loadable
        for stale in directory.glob("embeddings-*.f64"):
            if stale.name != data_name:
                stale.unlink(missing_ok=True)
        return directory

    @classmethod
    def open(
        cls, directory: Union[str, Path], mmap: bool = True
    ) -> "EmbeddingStore":
        """Load a store saved by :meth:`save`; raises on any inconsistency."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise EmbeddingStoreError(f"no embedding store at {directory}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise EmbeddingStoreError(f"unreadable manifest: {error}") from error
        version = manifest.get("version")
        if version != STORE_VERSION:
            raise EmbeddingStoreError(
                f"embedding store version {version!r} != {STORE_VERSION}"
            )
        try:
            rows = int(manifest["rows"])
            dim = int(manifest["dim"])
            data_file = manifest["data_file"]
            doc_ids = [int(d) for d in manifest["doc_ids"]]
            offsets = [int(o) for o in manifest["offsets"]]
            row_hashes = {
                int(d): str(h) for d, h in manifest["row_hashes"].items()
            }
            encoder_fp = str(manifest["encoder_fingerprint"])
            construction_fp = str(manifest.get("construction_fingerprint", ""))
        except (KeyError, TypeError, ValueError) as error:
            raise EmbeddingStoreError(f"malformed manifest: {error}") from error
        if len(doc_ids) != len(offsets):
            raise EmbeddingStoreError(
                f"{len(doc_ids)} doc ids but {len(offsets)} offsets"
            )
        data_path = directory / data_file
        if not data_path.exists():
            raise EmbeddingStoreError(f"missing data file {data_file}")
        expected = rows * dim * _DTYPE().itemsize
        actual = data_path.stat().st_size
        if actual != expected:
            raise EmbeddingStoreError(
                f"data file {data_file} is {actual} bytes, expected {expected}"
            )
        if rows == 0:
            matrix = np.zeros((0, dim), dtype=_DTYPE)
        elif mmap:
            matrix = np.memmap(
                data_path, dtype=_DTYPE, mode="r", shape=(rows, dim)
            )
        else:
            matrix = np.fromfile(data_path, dtype=_DTYPE).reshape(rows, dim)
        return cls(
            matrix=matrix,
            doc_ids=doc_ids,
            offsets=offsets,
            row_hashes=row_hashes,
            encoder_fingerprint=encoder_fp,
            construction_fingerprint=construction_fp,
            extra=dict(manifest.get("extra") or {}),
        )
