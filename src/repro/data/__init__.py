"""Synthetic open-domain QA data substrate.

The paper evaluates on HotpotQA (full-wiki) and Wikihop, neither of which is
available offline. This subpackage builds a deterministic synthetic
Wikipedia-style world that preserves the *shape* of the retrieval problem:

* :mod:`repro.data.world` — a typed entity/relation knowledge world,
* :mod:`repro.data.documents` — one encyclopedic document per entity, with
  paraphrased relation sentences, distractors and hyperlinks,
* :mod:`repro.data.corpus` — the document collection abstraction,
* :mod:`repro.data.hotpot` — bridge / comparison two-hop questions with
  gold document paths (HotpotQA-style),
* :mod:`repro.data.stream` — O(1)-memory streamed generation of 100k+
  seeded documents for corpus-scale (sharded) retrieval,
* :mod:`repro.data.wikihop` — (entity, relation, ?) queries with candidate
  answers and support documents (Wikihop-style).
"""

from repro.data.world import World, WorldConfig, Entity, Fact
from repro.data.corpus import Corpus, Document
from repro.data.documents import build_corpus
from repro.data.hotpot import HotpotDataset, HotpotQuestion, build_hotpot_dataset
from repro.data.stream import StreamConfig, document_at, stream_documents
from repro.data.wikihop import WikihopDataset, WikihopQuery, build_wikihop_dataset

__all__ = [
    "World",
    "WorldConfig",
    "Entity",
    "Fact",
    "Corpus",
    "Document",
    "build_corpus",
    "StreamConfig",
    "document_at",
    "stream_documents",
    "HotpotDataset",
    "HotpotQuestion",
    "build_hotpot_dataset",
    "WikihopDataset",
    "WikihopQuery",
    "build_wikihop_dataset",
]
