"""Micro-benchmark: micro-batched serving vs per-request serving.

Stands up :class:`repro.serve.RetrievalService` twice over the *same*
retriever — once with ``max_batch_size=1`` (every request pays a full
encoder forward + scoring matmul alone) and once with dynamic
micro-batching — and replays the same query set from 8 client threads
against both. The encoder is a real (untrained) MiniBERT, not the
hashing stub: micro-batching's win comes from amortizing the per-forward
Python/numpy overhead of encoding across the coalesced batch, so the
served path must include encoding for the comparison to mean anything.
The cache is disabled in both runs — this measures batching, not
memoization.

Writes ``BENCH_serve.json`` next to this file. Marked ``perf`` +
``serve``; tier-1 (``testpaths = tests``) never collects it.
"""

import json
import random
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.corpus import Corpus, Document
from repro.data.world import Entity
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.oie.triple import Triple
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore
from repro.serve import RetrievalService, ServiceConfig
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocab
from repro.storage.atomic import atomic_write_json

pytestmark = [pytest.mark.perf, pytest.mark.serve]

N_DOCS = 120
TRIPLES_PER_DOC = 4
N_QUERIES = 48
N_THREADS = 8
K = 5
DIM = 32
N_LAYERS = 2
OUT_PATH = Path(__file__).parent / "BENCH_serve.json"


@pytest.fixture(scope="module")
def bench_setup():
    rng = np.random.RandomState(29)
    words = [f"word{i}" for i in range(300)]
    documents = []
    rows = {}
    for doc_id in range(N_DOCS):
        title = f"Doc {doc_id}"
        triples = [
            Triple(
                subject=title,
                predicate=words[rng.randint(len(words))],
                object=" ".join(
                    words[rng.randint(len(words))] for _ in range(3)
                ),
            )
            for _ in range(TRIPLES_PER_DOC)
        ]
        documents.append(
            Document(
                doc_id=doc_id,
                title=title,
                text=" ".join(t.flatten() for t in triples),
                entity=Entity(uid=doc_id, name=title, kind="synthetic"),
            )
        )
        rows[doc_id] = triples
    corpus = Corpus(documents)
    store = TripleStore(corpus)
    for doc_id, triples in rows.items():
        store.put(doc_id, triples)
    queries = [
        "what is "
        + " ".join(words[rng.randint(len(words))] for _ in range(4))
        + " ?"
        for _ in range(N_QUERIES)
    ]
    vocab = Vocab.from_texts(
        [d.text for d in documents] + queries, tokenize
    )
    encoder = MiniBertEncoder(
        vocab,
        EncoderConfig(
            dim=DIM,
            n_layers=N_LAYERS,
            n_heads=4,
            max_len=24,
            residual_scale=0.05,
        ),
    )
    encoder.fit_idf([store.field_text(d.doc_id) for d in documents])
    retriever = SingleRetriever(encoder, store)
    retriever.refresh_embeddings()
    return retriever, queries


def _replay(service, queries):
    """Replay the query set from N_THREADS client threads; (elapsed, errors)."""
    errors = []

    def client(seed):
        order = list(queries)
        random.Random(seed).shuffle(order)
        for question in order:
            try:
                service.retrieve(question, k=K, timeout=300)
            except Exception as error:  # recorded; bench asserts none below
                errors.append(repr(error))

    threads = [
        threading.Thread(target=client, args=(seed,))
        for seed in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, errors


def test_micro_batching_speedup(bench_setup):
    retriever, queries = bench_setup
    total = N_THREADS * len(queries)
    common = dict(max_pending=total, cache_size=0, default_k=K)

    sequential_cfg = ServiceConfig(
        max_batch_size=1, max_wait_ms=0.0, **common
    )
    # closed-loop clients cap in-flight requests at N_THREADS, so size the
    # batch to that: the flush-on-size path fires as soon as every client
    # has a request queued, instead of idling out the wait window hoping
    # for a 9th request that cannot arrive
    batched_cfg = ServiceConfig(
        max_batch_size=N_THREADS, max_wait_ms=2.0, **common
    )

    with RetrievalService(retriever, config=sequential_cfg) as service:
        sequential_s, errors = _replay(service, queries)
        assert errors == []
        sequential_snap = service.stats_snapshot()

    with RetrievalService(retriever, config=batched_cfg) as service:
        batched_s, errors = _replay(service, queries)
        assert errors == []
        batched_snap = service.stats_snapshot()

    assert sequential_snap["completed"] == total
    assert batched_snap["completed"] == total
    assert sequential_snap["mean_batch_size"] == 1.0
    assert batched_snap["mean_batch_size"] > 1.0, (
        "micro-batcher never coalesced; the comparison is meaningless"
    )

    sequential_qps = total / sequential_s
    batched_qps = total / batched_s
    speedup = batched_qps / sequential_qps

    payload = {
        "n_docs": N_DOCS,
        "n_queries": len(queries),
        "client_threads": N_THREADS,
        "k": K,
        "dim": DIM,
        "sequential_seconds": sequential_s,
        "batched_seconds": batched_s,
        "sequential_qps": sequential_qps,
        "batched_qps": batched_qps,
        "speedup": speedup,
        "sequential_latency_ms": sequential_snap["latency_ms"],
        "batched_latency_ms": batched_snap["latency_ms"],
        "batched_mean_batch_size": batched_snap["mean_batch_size"],
        "batched_batch_size_histogram": batched_snap["batch_size_histogram"],
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nserve throughput: sequential {sequential_qps:.0f} qps, "
        f"micro-batched {batched_qps:.0f} qps ({speedup:.1f}x, "
        f"mean batch {batched_snap['mean_batch_size']:.1f})"
    )
    # the acceptance bar from the serving issue: coalescing buys >= 3x
    assert speedup >= 3.0, payload
