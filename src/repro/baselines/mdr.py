"""MDR baseline (Xiong et al. 2020): recursive dense retrieval.

MDR iteratively encodes "the question and hop-i retrieved document as a
query vector" and retrieves hop i+1 with maximum inner-product search. Its
question update is full-text concatenation — exactly the noisy updater the
paper criticizes (Sec. III-C): on bridge questions the hop-1 document's
text drowns the question, which is why MDR's bridge PEM collapses in
Table V while its comparison PEM stays high (comparison hop 2 matches the
original question tokens anyway).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.dense_base import DenseConfig, DenseRetriever
from repro.data.corpus import Corpus
from repro.encoder.minibert import MiniBertEncoder


class MDRRetriever(DenseRetriever):
    """Recursive dense retrieval with concatenation question update."""

    def __init__(
        self,
        encoder: MiniBertEncoder,
        corpus: Corpus,
        config: Optional[DenseConfig] = None,
        k_hop1: int = 8,
        k_hop2: int = 4,
    ):
        super().__init__(encoder, corpus, config)
        self.k_hop1 = k_hop1
        self.k_hop2 = k_hop2

    def retrieve_documents(self, question: str, k: int = 8) -> List[str]:
        """One-hop dense retrieval."""
        return self.retrieve_titles(question, k=k)

    def hop2_query(self, question: str, doc_id: int) -> str:
        """MDR's update: full hop-1 text appended to the question.

        Unlike TPRR we do not truncate aggressively — the point of the
        baseline is that the concatenated document dominates the encoding.
        """
        return f"{question} {self.corpus[doc_id].text}"

    def retrieve_paths(
        self, question: str, k_paths: int = 8
    ) -> List[Tuple[str, ...]]:
        """Recursive two-hop retrieval (batched beam over hop-1 candidates)."""
        return self.two_hop_paths(
            question, self.k_hop1, self.k_hop2, k_paths=k_paths
        )
