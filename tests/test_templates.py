"""Consistency tests for template tables and example scripts."""

import importlib.util
import pathlib

import pytest

from repro.data import templates as T
from repro.data.hotpot import CHAIN_PAIRS, COMPARISON_RELATIONS
from repro.data.world import RELATION_SCHEMA


class TestTemplateConsistency:
    def test_every_relation_has_sentence_templates(self):
        for relation in RELATION_SCHEMA:
            assert relation in T.SENTENCE_TEMPLATES, relation
            assert T.SENTENCE_TEMPLATES[relation], relation

    def test_sentence_templates_have_placeholders(self):
        for relation, variants in T.SENTENCE_TEMPLATES.items():
            for template in variants:
                assert "{o}" in template, (relation, template)
                assert "{pron}" in template or "{s}" in template

    def test_chain_pairs_schema_compatible(self):
        for r1, r2 in CHAIN_PAIRS:
            _, bridge_kind = RELATION_SCHEMA[r1]
            subject_kind, _ = RELATION_SCHEMA[r2]
            assert bridge_kind == subject_kind, (r1, r2)

    def test_chain_pairs_have_templates(self):
        for r1, r2 in CHAIN_PAIRS:
            assert r1 in T.BRIDGE_DESC_TEMPLATES, r1
            assert r2 in T.BRIDGE_QUESTION_TEMPLATES, r2

    def test_bridge_templates_have_desc_placeholder(self):
        for relation, variants in T.BRIDGE_QUESTION_TEMPLATES.items():
            for template in variants:
                assert "{desc}" in template, (relation, template)

    def test_comparison_relations_have_templates(self):
        for kind, relations in COMPARISON_RELATIONS.items():
            for relation in relations:
                assert relation in T.COMPARISON_QUESTION_TEMPLATES, relation

    def test_comparison_templates_have_both_names(self):
        for relation, variants in T.COMPARISON_QUESTION_TEMPLATES.items():
            for template in variants:
                assert "{a}" in template and "{b}" in template

    def test_occupation_synonyms_differ_from_canonical(self):
        for canonical, synonym in T.OCCUPATION_SYNONYMS.items():
            assert canonical != synonym
            # synonyms must not leak the canonical token
            assert canonical not in synonym.split()

    def test_distractor_templates_have_noise_slots(self):
        for template in T.DISTRACTOR_TEMPLATES:
            assert "{year}" in template or "{city}" in template

    def test_intro_templates_cover_all_kinds(self):
        from repro.data.world import ENTITY_KINDS

        for kind in ENTITY_KINDS:
            assert kind in T.INTRO_TEMPLATES
            assert kind in T.KIND_PRONOUNS


class TestExamplesCompile:
    """Every example script must at least parse and import-compile."""

    EXAMPLES = sorted(
        (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
    )

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_example_compiles(self, path):
        source = path.read_text()
        compile(source, str(path), "exec")
        assert 'if __name__ == "__main__":' in source
        assert "def main()" in source
